// Tests for parallel host-sharded event execution (DESIGN.md §7): the
// topology partitioner, the conservative lane engine (horizons, outbox
// merge, barrier ops, partition-safety guards), and the headline guarantee —
// worker count is a pure speed knob that cannot change observable output.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "net/packet_network.h"
#include "net/partition.h"
#include "net/topology.h"
#include "sim/parallel.h"
#include "sim/simulator.h"
#include "util/error.h"

using namespace mg;
namespace st = mg::sim;

namespace {

constexpr st::SimTime kUs = st::kMicrosecond;
constexpr st::SimTime kMs = st::kMillisecond;

/// Two 3-host campus clusters joined by one high-latency WAN link — the
/// canonical latency-cut shape (the paper's UCSD/UIUC vBNS pair).
net::Topology dumbbell(double wan_loss = 0.0) {
  net::Topology topo;
  auto r0 = topo.addRouter("r0");
  auto r1 = topo.addRouter("r1");
  for (int i = 0; i < 3; ++i) {
    auto h = topo.addHost("a" + std::to_string(i));
    topo.addLink("la" + std::to_string(i), h, r0, 100e6, 50 * kUs, 256 * 1024);
  }
  for (int i = 0; i < 3; ++i) {
    auto h = topo.addHost("b" + std::to_string(i));
    topo.addLink("lb" + std::to_string(i), h, r1, 100e6, 50 * kUs, 256 * 1024);
  }
  topo.addLink("wan", r0, r1, 45e6, 30 * kMs, 1 << 20, wan_loss);
  return topo;
}

}  // namespace

// ------------------------------------------------------ partition planning --

TEST(PartitionPlan, CutsDumbbellOnWanLink) {
  const net::Topology topo = dumbbell();
  const net::PartitionPlan plan = net::planPartitions(topo, 8);
  ASSERT_EQ(plan.partitions, 2);
  EXPECT_EQ(plan.cut_latency, 30 * kMs);
  ASSERT_EQ(plan.cut_links.size(), 1u);
  EXPECT_EQ(topo.link(plan.cut_links[0]).name, "wan");
  // Each cluster lands whole in one partition, on opposite sides of the cut.
  const int pa = plan.partitionOf(topo.findNode("r0"));
  const int pb = plan.partitionOf(topo.findNode("r1"));
  EXPECT_NE(pa, pb);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(plan.partitionOf(topo.findNode("a" + std::to_string(i))), pa);
    EXPECT_EQ(plan.partitionOf(topo.findNode("b" + std::to_string(i))), pb);
  }
}

TEST(PartitionPlan, IsPureFunctionOfStructureNotLinkState) {
  net::Topology topo = dumbbell();
  const net::PartitionPlan before = net::planPartitions(topo, 8);
  // A downed link (even the cut link itself) must not change the plan: the
  // plan is computed once from structure, fault state is transient.
  topo.mutableLink(topo.findLink("wan")).up = false;
  topo.mutableLink(topo.findLink("la1")).up = false;
  const net::PartitionPlan after = net::planPartitions(topo, 8);
  EXPECT_EQ(before.partition_of, after.partition_of);
  EXPECT_EQ(before.partitions, after.partitions);
  EXPECT_EQ(before.cut_latency, after.cut_latency);
  EXPECT_EQ(before.cut_links, after.cut_links);
}

TEST(PartitionPlan, EveryCutLinkCarriesAtLeastTheCutLatency) {
  const net::Topology topo = dumbbell();
  const net::PartitionPlan plan = net::planPartitions(topo, 8);
  for (net::LinkId l = 0; l < topo.linkCount(); ++l) {
    const bool cut = plan.partitionOf(topo.link(l).a) != plan.partitionOf(topo.link(l).b);
    if (cut) {
      EXPECT_GE(topo.link(l).latency, plan.cut_latency);
    }
  }
}

TEST(PartitionPlan, RespectsMaxPartitions) {
  // A uniform-latency star has no interior cut, so every node becomes its
  // own component at tau = the common latency; bucketing must then fold the
  // components into at most max_partitions groups.
  net::Topology topo;
  auto sw = topo.addRouter("sw");
  for (int i = 0; i < 20; ++i) {
    auto h = topo.addHost("h" + std::to_string(i));
    topo.addLink("l" + std::to_string(i), h, sw, 100e6, 50 * kUs, 256 * 1024);
  }
  const net::PartitionPlan plan = net::planPartitions(topo, 4);
  EXPECT_GT(plan.partitions, 1);
  EXPECT_LE(plan.partitions, 4);
  for (net::NodeId n = 0; n < topo.nodeCount(); ++n) {
    EXPECT_GE(plan.partitionOf(n), 0);
    EXPECT_LT(plan.partitionOf(n), plan.partitions);
  }
}

TEST(PartitionPlan, NoUsefulCutMeansSinglePartition) {
  // Zero-latency links cannot fund a lookahead: no plan.
  net::Topology topo;
  auto a = topo.addHost("a");
  auto b = topo.addHost("b");
  topo.addLink("l", a, b, 100e6, 0);
  const net::PartitionPlan plan = net::planPartitions(topo, 8);
  EXPECT_EQ(plan.partitions, 1);
  EXPECT_TRUE(plan.cut_links.empty());
  // max_partitions < 2 disables planning outright.
  EXPECT_EQ(net::planPartitions(dumbbell(), 1).partitions, 1);
}

// ------------------------------------------------------------- lane engine --

namespace {

/// Per-lane execution journal: events append (time, tag) to their own lane's
/// vector (race-free by the lane-drain discipline), and the merged view is
/// rebuilt with the same deterministic rule the engine uses.
struct LaneLog {
  std::vector<std::vector<std::string>> by_lane;
  explicit LaneLog(int lanes) : by_lane(static_cast<std::size_t>(lanes)) {}
  void record(st::Simulator& sim, const std::string& tag) {
    by_lane[static_cast<std::size_t>(sim.currentLane())].push_back(
        std::to_string(sim.now()) + ":" + tag);
  }
  std::string merged() const {
    std::string out;
    for (const auto& lane : by_lane) {
      for (const auto& e : lane) out += e + "\n";
      out += "--\n";
    }
    return out;
  }
};

}  // namespace

TEST(ParallelEngine, CrossLaneTrafficIsDeterministicAcrossWorkerCounts) {
  // Three lanes ping-ponging events across each other; any worker count must
  // produce the identical per-lane journals.
  auto runScenario = [](int workers) {
    st::Simulator sim;
    const st::SimTime kLook = 10;
    sim.configureParallel(3, workers, kLook);
    LaneLog log(3);
    // Each wire lane runs a chain that re-schedules locally and periodically
    // crosses to the other wire lane and back to lane 0 (always >= lookahead
    // out, as the wire layer guarantees). The chain closures outlive the
    // setup loop — events hold plain pointers into this vector.
    std::vector<std::unique_ptr<std::function<void(int)>>> chains;
    for (int lane = 1; lane <= 2; ++lane) {
      chains.push_back(std::make_unique<std::function<void(int)>>());
      auto* chain = chains.back().get();
      *chain = [&sim, &log, chain, lane](int step) {
        log.record(sim, "chain" + std::to_string(lane) + "." + std::to_string(step));
        if (step >= 30) return;
        sim.scheduleAfter(3, [chain, step] { (*chain)(step + 1); });
        if (step % 5 == 0) {
          const int other = (lane == 1) ? 2 : 1;
          sim.scheduleOnLane(other, sim.now() + kLook,
                             [&log, &sim, lane] { log.record(sim, "x-from" + std::to_string(lane)); });
          sim.scheduleOnLane(0, sim.now() + kLook,
                             [&log, &sim, lane] { log.record(sim, "home" + std::to_string(lane)); });
        }
      };
      sim.scheduleOnLane(lane, static_cast<st::SimTime>(lane), [chain] { (*chain)(0); });
    }
    sim.run();
    return log.merged() + sim.metrics().snapshotJson();
  };
  const std::string one = runScenario(1);
  EXPECT_EQ(one, runScenario(2));
  EXPECT_EQ(one, runScenario(4));
  EXPECT_EQ(one, runScenario(8));
  EXPECT_NE(one.find("x-from1"), std::string::npos);
  EXPECT_NE(one.find("home2"), std::string::npos);
}

TEST(ParallelEngine, RunAtBarrierDefersUntilNoWorkerRuns) {
  st::Simulator sim;
  sim.configureParallel(2, 1, 10);
  std::vector<std::string> order;
  bool in_phase_at_op = true;
  sim.scheduleOnLane(1, 0, [&] {
    EXPECT_TRUE(sim.inParallelPhase());
    sim.runAtBarrier([&] {
      in_phase_at_op = sim.inParallelPhase();
      order.push_back("barrier-op");
    });
    order.push_back("event");
  });
  sim.run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "event");      // op deferred past the event itself
  EXPECT_EQ(order[1], "barrier-op");
  EXPECT_FALSE(in_phase_at_op);      // ...to a point where no worker runs
  EXPECT_EQ(sim.metrics().counterValue("sim.parallel.barrier_ops"), 1);
}

TEST(ParallelEngine, ProcessApisAreLane0Only) {
  st::Simulator sim;
  sim.configureParallel(2, 2, 10);
  bool spawn_threw = false, delay_threw = false, kill_threw = false;
  sim.scheduleOnLane(1, 0, [&] {
    try {
      sim.spawn("p", [] {});
    } catch (const UsageError&) {
      spawn_threw = true;
    }
    try {
      sim.delay(1);
    } catch (const UsageError&) {
      delay_threw = true;
    }
    try {
      sim.killProcessById(1);
    } catch (const UsageError&) {
      kill_threw = true;
    }
  });
  sim.run();
  EXPECT_TRUE(spawn_threw);
  EXPECT_TRUE(delay_threw);
  EXPECT_TRUE(kill_threw);
}

TEST(ParallelEngine, HorizonViolationIsCountedAndClamped) {
  st::Simulator sim;
  sim.configureParallel(3, 2, 10);
  st::SimTime ran_at = -1;
  // Lane 2 executes up to t=5 in the first phase; lane 1 then hands it an
  // event at t=1 — in lane 2's past. The merge must clamp (never lose or
  // reorder into history) and count the violation.
  sim.scheduleOnLane(2, 5, [] {});
  sim.scheduleOnLane(1, 0, [&] {
    sim.scheduleOnLane(2, 1, [&] { ran_at = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(ran_at, 5);
  EXPECT_EQ(sim.metrics().counterValue("sim.parallel.horizon_violations"), 1);
}

TEST(ParallelEngine, CrossLaneCancelDuringPhaseThrows) {
  st::Simulator sim;
  sim.configureParallel(2, 1, 10);
  const st::EventId lane0_event = sim.scheduleAt(50, [] {});
  ASSERT_NE(lane0_event, 0u);
  bool threw = false;
  sim.scheduleOnLane(1, 0, [&] {
    try {
      sim.cancel(lane0_event);
    } catch (const UsageError&) {
      threw = true;
    }
  });
  sim.run();
  EXPECT_TRUE(threw);
}

TEST(ParallelEngine, ScheduleOnLaneOutsidePhaseIsDirectAndCancellable) {
  st::Simulator sim;
  sim.configureParallel(2, 1, 10);
  bool cancelled_ran = false, kept_ran = false;
  const st::EventId id = sim.scheduleOnLane(1, 5, [&] { cancelled_ran = true; });
  EXPECT_NE(id, 0u);  // outside a phase, cross-lane schedules return real ids
  sim.scheduleOnLane(1, 6, [&] { kept_ran = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(cancelled_ran);
  EXPECT_TRUE(kept_ran);
  EXPECT_EQ(sim.pendingEventCount(), 0u);
}

TEST(ParallelEngine, SingleLaneEngineRunsProcessesClassically) {
  // configureParallel(1, N, ...) keeps one lane (no usable topology cut) but
  // still routes run() through the engine, so every worker count exercises
  // the same code path. Processes must behave exactly as in the classic
  // kernel.
  st::Simulator sim;
  sim.configureParallel(1, 4, 1);
  int ticks = 0;
  sim.spawn("ticker", [&] {
    for (int i = 0; i < 5; ++i) {
      sim.delay(10);
      ++ticks;
    }
  });
  sim.run();
  EXPECT_EQ(ticks, 5);
  EXPECT_EQ(sim.now(), 50);
  EXPECT_GT(sim.metrics().counterValue("sim.parallel.epochs"), 0);
}

TEST(ParallelEngine, RunUntilBoundsEveryLaneClock) {
  st::Simulator sim;
  sim.configureParallel(3, 2, 10);
  int ran = 0;
  for (int lane = 0; lane < 3; ++lane) {
    sim.scheduleOnLane(lane, 40, [&ran] { ++ran; });  // due
    sim.scheduleOnLane(lane, 200, [&ran] { ++ran; }); // beyond the bound
  }
  sim.runUntil(100);
  EXPECT_EQ(ran, 3);
  EXPECT_EQ(sim.now(), 100);
  EXPECT_EQ(sim.pendingEventCount(), 3u);
  sim.run();
  EXPECT_EQ(ran, 6);
}

// ----------------------------------------------- sharded wire determinism --

namespace {

struct NetRun {
  std::string metrics;
  std::string trace;
  std::vector<std::string> deliveries;  // lane-0 handler log, in order
};

/// Drive the sharded PacketNetwork directly: every host streams packets to a
/// peer across the WAN cut (plus some intra-cluster chatter) over a lossy
/// WAN link, so loss draws, queueing, and cross-partition handoff all engage.
NetRun runShardedNet(int workers) {
  st::Simulator sim;
  net::Topology topo = dumbbell(/*wan_loss=*/0.05);
  const net::PartitionPlan plan = net::planPartitions(topo, 8);
  EXPECT_EQ(plan.partitions, 2);
  net::PacketNetworkOptions nopts;
  net::PacketNetwork net(sim, std::move(topo), nopts);
  const st::SimTime lookahead =
      std::min(nopts.host_stack_delay, plan.cut_latency);  // time_scale == 1
  sim.configureParallel(plan.partitions + 1, workers, lookahead);
  net.setPartitionPlan(plan);
  sim.traceBus().setEnabled("net", true);

  NetRun out;
  const auto& t = net.topology();
  for (net::NodeId n = 0; n < t.nodeCount(); ++n) {
    if (t.node(n).kind != net::NodeKind::Host) continue;
    net.attachHost(n, [&out, &net, n](net::Packet&& p) {
      out.deliveries.push_back(net.topology().node(n).name + "<-" +
                               net.topology().node(p.src).name + "@" +
                               std::to_string(net.simulator().now()) + "#" +
                               std::to_string(p.payload.size()));
    });
  }
  // Senders live on lane 0, like real transports.
  auto sendOne = [&net](const std::string& from, const std::string& to, std::size_t bytes) {
    net::Packet p;
    p.src = net.topology().findNode(from);
    p.dst = net.topology().findNode(to);
    p.protocol = net::Protocol::Udp;
    p.payload.assign(bytes, 0xab);
    net.send(std::move(p));
  };
  for (int i = 0; i < 40; ++i) {
    sim.scheduleAt(i * 500 * kUs, [&sendOne, i] {
      sendOne("a" + std::to_string(i % 3), "b" + std::to_string((i + 1) % 3),
              static_cast<std::size_t>(100 + i));
      sendOne("b" + std::to_string(i % 3), "a" + std::to_string((i + 2) % 3),
              static_cast<std::size_t>(200 + i));
      sendOne("a" + std::to_string(i % 3), "a" + std::to_string((i + 1) % 3), 64);
    });
  }
  sim.run();
  out.metrics = sim.metrics().snapshotJson();
  out.trace = sim.traceBus().serialize();
  return out;
}

}  // namespace

TEST(ParallelNetwork, WorkerCountCannotChangeObservableOutput) {
  const NetRun one = runShardedNet(1);
  const NetRun two = runShardedNet(2);
  const NetRun four = runShardedNet(4);
  EXPECT_EQ(one.metrics, two.metrics);
  EXPECT_EQ(one.metrics, four.metrics);
  EXPECT_EQ(one.trace, two.trace);
  EXPECT_EQ(one.trace, four.trace);
  EXPECT_EQ(one.deliveries, two.deliveries);
  EXPECT_EQ(one.deliveries, four.deliveries);
  // The run exercised the stochastic path (WAN loss) and stayed horizon-safe.
  EXPECT_NE(one.metrics.find("\"net.packet.dropped_loss\":"), std::string::npos);
  EXPECT_GT(std::stoll(one.metrics.substr(one.metrics.find("\"sim.parallel.mailbox_msgs\":") + 28)),
            0);
  EXPECT_NE(one.metrics.find("\"sim.parallel.horizon_violations\":0"), std::string::npos);
  EXPECT_FALSE(one.deliveries.empty());
}

TEST(ParallelNetwork, FaultMutationsApplyAtBarriersDeterministically) {
  // Flip the WAN link and crash a host mid-run, from lane 0 (the fault
  // layer's home); runAtBarrier must serialize the mutations against the
  // wire lanes at any worker count.
  auto runScenario = [](int workers) {
    st::Simulator sim;
    net::Topology topo = dumbbell();
    const net::PartitionPlan plan = net::planPartitions(topo, 8);
    net::PacketNetworkOptions nopts;
    net::PacketNetwork net(sim, std::move(topo), nopts);
    sim.configureParallel(plan.partitions + 1, workers,
                          std::min(nopts.host_stack_delay, plan.cut_latency));
    net.setPartitionPlan(plan);
    int delivered = 0;
    for (net::NodeId n = 0; n < net.topology().nodeCount(); ++n) {
      if (net.topology().node(n).kind == net::NodeKind::Host) {
        net.attachHost(n, [&delivered](net::Packet&&) { ++delivered; });
      }
    }
    const net::LinkId wan = net.topology().findLink("wan");
    const net::NodeId b0 = net.topology().findNode("b0");
    for (int i = 0; i < 60; ++i) {
      sim.scheduleAt(i * kMs, [&net] {
        net::Packet p;
        p.src = net.topology().findNode("a0");
        p.dst = net.topology().findNode("b0");
        p.protocol = net::Protocol::Udp;
        p.payload.assign(128, 1);
        net.send(std::move(p));
      });
    }
    sim.scheduleAt(10 * kMs, [&net, wan] { net.setLinkUp(wan, false); });
    sim.scheduleAt(25 * kMs, [&net, wan] { net.setLinkUp(wan, true); });
    sim.scheduleAt(40 * kMs, [&net, b0] { net.setNodeUp(b0, false); });
    sim.scheduleAt(50 * kMs, [&net, b0] { net.setNodeUp(b0, true); });
    sim.run();
    return sim.metrics().snapshotJson() + "#" + std::to_string(delivered);
  };
  const std::string one = runScenario(1);
  EXPECT_EQ(one, runScenario(4));
  // The faults really bit: drops on the downed link and the downed node.
  EXPECT_EQ(one.find("\"net.packet.dropped_down\":0,"), std::string::npos);
}
