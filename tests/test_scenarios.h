// Shared end-to-end scenario fixtures for the test suite.
//
// fault_test, obs_test, and econ_test each grew their own copy of the same
// wiring — Alpha cluster + launcher + armed fault injector, or the small
// two-cluster economy. This header is the single source for that setup;
// each test file layers its own assertions on top.
//
// Everything here is deterministic: two calls with equal arguments produce
// byte-identical runs (the determinism tests rely on it).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/launcher.h"
#include "core/microgrid_platform.h"
#include "core/topologies.h"
#include "econ/broker.h"
#include "econ/economy.h"
#include "econ/grid_gen.h"
#include "econ/workload.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "grid/gram.h"
#include "npb/npb.h"
#include "vmpi/comm.h"

namespace mgtest {

// ------------------------------------------------------ fault event builders

/// A minimal event of `kind` against `target` — the common test shape.
inline mg::fault::FaultEvent simpleEvent(mg::fault::FaultKind kind,
                                         const std::string& target,
                                         double at = 0.1, double duration = 0) {
  mg::fault::FaultEvent ev;
  ev.at = at;
  ev.kind = kind;
  ev.name = "test";
  ev.target = target;
  ev.duration = duration;
  return ev;
}

/// The canonical mid-run crash: vm3 dies at `at` and restarts `duration`
/// later (the crash-resubmit and golden-run scenarios both use it).
inline mg::fault::FaultEvent crashVm3(double at = 1.0, double duration = 3.0) {
  mg::fault::FaultEvent ev;
  ev.at = at;
  ev.kind = mg::fault::FaultKind::HostCrash;
  ev.name = "crash";
  ev.target = "vm3.ucsd.edu";
  ev.duration = duration;
  return ev;
}

/// The canonical lossy window: eth1 at `loss` drop rate for `duration`.
inline mg::fault::FaultEvent lossyEth1(double loss = 0.05, double duration = 60.0,
                                       double at = 0.0) {
  mg::fault::FaultEvent ev;
  ev.at = at;
  ev.kind = mg::fault::FaultKind::LinkDegrade;
  ev.name = "lossy";
  ev.target = "eth1";
  ev.loss = loss;
  ev.duration = duration;
  return ev;
}

// ------------------------------------------------- Alpha launcher scenarios

struct HarnessOptions {
  int parallel_workers = 0;  // 0: sequential kernel
  bool spans = false;
  bool trace_bus = false;
  int max_resubmits = 3;
  std::string config_name = "Alpha4";
};

/// The Alpha cluster behind a started Launcher (GIS + gatekeepers up), with
/// optional observability streams enabled and a one-call fault arming hook.
/// Populate `registry` before run()/armFaults() as needed.
struct LauncherHarness {
  explicit LauncherHarness(const HarnessOptions& o = {})
      : cfg(mg::core::topologies::alphaCluster()),
        platform(cfg, platformOptions(o)),
        launcher(platform, registry) {
    if (o.spans) platform.simulator().spans().setEnabled(true);
    if (o.trace_bus) platform.simulator().traceBus().setEnabled("", true);
    launcher.startServices(&cfg, o.config_name);
    mg::core::LaunchOptions lopts;
    lopts.max_resubmits = o.max_resubmits;
    launcher.setLaunchOptions(lopts);
  }

  /// Arm `plan`, wiring host crash/restart through the launcher's
  /// availability tracking (the standard production hookup).
  mg::fault::FaultInjector& armFaults(mg::fault::FaultPlan plan) {
    injector.emplace(platform, std::move(plan));
    injector->onHostCrash([this](const std::string& h) { launcher.markHostDown(h); });
    injector->onHostRestart([this](const std::string& h) { launcher.markHostUp(h); });
    injector->arm();
    return *injector;
  }

  /// One rank on each of the four Alpha hosts.
  static std::vector<mg::grid::AllocationPart> fourRanks() {
    return {{"vm0.ucsd.edu", 1},
            {"vm1.ucsd.edu", 1},
            {"vm2.ucsd.edu", 1},
            {"vm3.ucsd.edu", 1}};
  }

  mg::core::VirtualGridConfig cfg;
  mg::core::MicroGridPlatform platform;
  mg::grid::ExecutableRegistry registry;
  mg::core::Launcher launcher;
  std::optional<mg::fault::FaultInjector> injector;

 private:
  static mg::core::MicroGridOptions platformOptions(const HarnessOptions& o) {
    mg::core::MicroGridOptions m;
    m.parallel_workers = o.parallel_workers;
    return m;
  }
};

// ------------------------------------- direct (no-launcher) EP under faults

struct EpFaultRun {
  std::string metrics;             // MetricsRegistry::snapshotJson()
  std::string trace;               // TraceBus::serialize() ("" if not enabled)
  std::vector<double> checksums;   // one per EP rank
};

/// Four NPB EP ranks spawned directly (no middleware) on the Alpha cluster
/// under `plan` — the stochastic-determinism workload: TCP retransmits, RTO
/// timers armed and cancelled, seeded packet drops. Everything observable is
/// a pure function of (plan, seed).
inline EpFaultRun runEpUnderFaults(const mg::fault::FaultPlan& plan,
                                   std::uint64_t seed = 42,
                                   bool trace = false) {
  auto cfg = mg::core::topologies::alphaCluster();
  mg::core::MicroGridOptions mopts;
  mopts.seed = seed;
  mg::core::MicroGridPlatform platform(cfg, mopts);
  if (trace) platform.simulator().traceBus().setEnabled("", true);

  mg::fault::FaultPlan copy = plan;
  mg::fault::FaultInjector injector(platform, std::move(copy));
  injector.arm();

  std::vector<std::string> hosts;
  for (const auto& h : platform.mapper().hosts()) hosts.push_back(h.hostname);
  hosts.resize(4);
  auto checksums = std::make_shared<std::vector<double>>(4);
  for (int r = 0; r < 4; ++r) {
    platform.spawnOn(hosts[static_cast<size_t>(r)], "rank" + std::to_string(r),
                     [=](mg::vos::HostContext& ctx) {
                       auto comm = mg::vmpi::Comm::init(ctx, r, hosts);
                       const auto res = mg::npb::runEp(*comm, ctx, mg::npb::NpbClass::S);
                       (*checksums)[static_cast<size_t>(r)] = res.checksum;
                       comm->finalize();
                     });
  }
  platform.run();

  EpFaultRun out;
  out.metrics = platform.simulator().metrics().snapshotJson();
  if (trace) out.trace = platform.simulator().traceBus().serialize();
  out.checksums = *checksums;
  return out;
}

// ------------------------------------------------------- small economy runs

/// A small but non-trivial economy: 2 clusters, 16 cores, ~60% utilization.
inline mg::econ::EconGridSpec smallGrid() {
  mg::econ::EconGridSpec g;
  g.clusters = 2;
  g.hosts_per_cluster = 4;
  g.cores_per_host = 2;
  g.timeshared_every = 0;  // space-shared only: simplest accounting
  return g;
}

inline mg::econ::WorkloadSpec smallWorkload(int jobs) {
  mg::econ::WorkloadSpec w;
  w.jobs = jobs;
  w.users = 50;
  w.rate = 0.3;
  w.runtime_mu = 2.0;
  w.max_cpus = 4;
  w.day_period_s = 600;
  return w;
}

inline mg::econ::EconReport runEconomy(const mg::econ::EconGridSpec& gspec,
                                       const mg::econ::WorkloadSpec& wspec,
                                       mg::econ::BrokerPolicy policy,
                                       double crash_at = 0, double restart_at = 0) {
  const mg::econ::EconGrid grid = mg::econ::makeEconGrid(gspec);
  mg::core::MicroGridOptions mopts;
  mopts.netmodel = mg::net::NetModelKind::Flow;
  mopts.rate_override = 1.0;
  mg::core::MicroGridPlatform platform(grid.grid, mopts);
  mg::econ::EconOptions eopts;
  eopts.workload = wspec;
  eopts.policy = policy;
  mg::econ::GridEconomy economy(platform, grid, eopts);
  economy.arm();
  if (crash_at > 0) {
    economy.scheduleCrash("c0", crash_at);
    if (restart_at > 0) economy.scheduleRestart("c0", restart_at);
  }
  platform.run();
  return economy.report();
}

}  // namespace mgtest
