// Tests for the NPB mini-kernels, WaveToy, the micro-benchmarks, and the
// Autopilot instrumentation.
#include <gtest/gtest.h>

#include <tuple>

#include "apps/microbench.h"
#include "apps/wavetoy.h"
#include "autopilot/autopilot.h"
#include "core/launcher.h"
#include "core/microgrid_platform.h"
#include "core/reference_platform.h"
#include "core/topologies.h"
#include "npb/cost_model.h"
#include "npb/npb.h"

using namespace mg;
using core::MicroGridPlatform;
using core::ReferencePlatform;

namespace {

/// Run one benchmark with `n` ranks (one per host) on the given platform.
std::vector<npb::KernelResult> runOn(core::Platform& platform, npb::Benchmark b,
                                     npb::NpbClass cls, int n) {
  std::vector<std::string> hosts;
  for (const auto& h : platform.mapper().hosts()) hosts.push_back(h.hostname);
  hosts.resize(static_cast<size_t>(n));
  auto results = std::make_shared<std::vector<npb::KernelResult>>();
  for (int r = 0; r < n; ++r) {
    platform.spawnOn(hosts[static_cast<size_t>(r)], "rank" + std::to_string(r),
                     [=, &platform](vos::HostContext& ctx) {
                       (void)platform;
                       auto comm = vmpi::Comm::init(ctx, r, hosts);
                       results->push_back(npb::runBenchmark(b, *comm, ctx, cls));
                       comm->finalize();
                     });
  }
  platform.run();
  return *results;
}

std::vector<npb::KernelResult> runOnReference(npb::Benchmark b, npb::NpbClass cls, int n) {
  core::topologies::AlphaClusterParams params;
  params.hosts = std::max(n, 2);
  auto cfg = core::topologies::alphaCluster(params);
  ReferencePlatform platform(cfg);
  return runOn(platform, b, cls, n);
}

}  // namespace

// -------------------------------------------------------------- cost model --

TEST(CostModel, ClassAIsBiggerThanS) {
  for (auto b : {npb::Benchmark::EP, npb::Benchmark::IS, npb::Benchmark::MG, npb::Benchmark::LU,
                 npb::Benchmark::BT}) {
    const auto s = npb::costFor(b, npb::NpbClass::S);
    const auto a = npb::costFor(b, npb::NpbClass::A);
    EXPECT_GT(a.total_ops, s.total_ops) << npb::benchmarkName(b);
  }
}

TEST(CostModel, NameConversions) {
  EXPECT_EQ(npb::classFromString("A"), npb::NpbClass::A);
  EXPECT_EQ(npb::classFromString("s"), npb::NpbClass::S);
  EXPECT_THROW(npb::classFromString("Z"), mg::ParseError);
  EXPECT_EQ(npb::benchmarkFromString("mg"), npb::Benchmark::MG);
  EXPECT_THROW(npb::benchmarkFromString("cg"), mg::ParseError);
  EXPECT_EQ(npb::benchmarkName(npb::Benchmark::LU), "LU");
  EXPECT_EQ(npb::className(npb::NpbClass::A), "A");
}

// ---------------------------------------------------------------- kernels --

class NpbKernelSweep
    : public ::testing::TestWithParam<std::tuple<npb::Benchmark, int>> {};

TEST_P(NpbKernelSweep, VerifiesOnReference) {
  auto [bench, ranks] = GetParam();
  auto results = runOnReference(bench, npb::NpbClass::S, ranks);
  ASSERT_EQ(results.size(), static_cast<size_t>(ranks));
  for (const auto& r : results) {
    EXPECT_TRUE(r.verified) << npb::benchmarkName(bench) << " rank " << r.rank;
    EXPECT_GT(r.seconds, 0.0);
    EXPECT_EQ(r.nprocs, ranks);
  }
}

INSTANTIATE_TEST_SUITE_P(
    BenchRanks, NpbKernelSweep,
    ::testing::Combine(::testing::Values(npb::Benchmark::EP, npb::Benchmark::IS,
                                         npb::Benchmark::MG, npb::Benchmark::LU,
                                         npb::Benchmark::BT),
                       ::testing::Values(1, 2, 4)),
    [](const auto& info) {
      return npb::benchmarkName(std::get<0>(info.param)) + "x" +
             std::to_string(std::get<1>(info.param));
    });

TEST(NpbKernels, DeterministicChecksums) {
  for (auto b : {npb::Benchmark::EP, npb::Benchmark::MG}) {
    auto r1 = runOnReference(b, npb::NpbClass::S, 4);
    auto r2 = runOnReference(b, npb::NpbClass::S, 4);
    EXPECT_DOUBLE_EQ(r1[0].checksum, r2[0].checksum) << npb::benchmarkName(b);
    EXPECT_DOUBLE_EQ(r1[0].seconds, r2[0].seconds) << npb::benchmarkName(b);
  }
}

TEST(NpbKernels, ChecksumIdenticalAcrossPlatforms) {
  // The same code runs on both platforms — numerics must agree exactly
  // (the MicroGrid virtualizes time, not arithmetic).
  auto cfg = core::topologies::alphaCluster();
  const auto ref = runOnReference(npb::Benchmark::MG, npb::NpbClass::S, 4);
  MicroGridPlatform mgp(cfg);
  const auto emu = runOn(mgp, npb::Benchmark::MG, npb::NpbClass::S, 4);
  ASSERT_FALSE(ref.empty());
  ASSERT_FALSE(emu.empty());
  EXPECT_DOUBLE_EQ(ref[0].checksum, emu[0].checksum);
  EXPECT_TRUE(emu[0].verified);
}

TEST(NpbKernels, ClassATakesLongerAndSendsMore) {
  const auto s = runOnReference(npb::Benchmark::MG, npb::NpbClass::S, 4);
  const auto a = runOnReference(npb::Benchmark::MG, npb::NpbClass::A, 4);
  EXPECT_GT(a[0].seconds, 5.0 * s[0].seconds);
  EXPECT_GT(a[0].bytes_sent, 5 * s[0].bytes_sent);
}

TEST(NpbKernels, EpScalesWithRanks) {
  const auto r1 = runOnReference(npb::Benchmark::EP, npb::NpbClass::S, 1);
  const auto r4 = runOnReference(npb::Benchmark::EP, npb::NpbClass::S, 4);
  // EP is embarrassingly parallel: 4 ranks ~ 4x faster.
  EXPECT_NEAR(r1[0].seconds / r4[0].seconds, 4.0, 0.4);
}

TEST(NpbKernels, GramRegistrationRunsThroughLauncher) {
  auto cfg = core::topologies::alphaCluster();
  ReferencePlatform platform(cfg);
  grid::ExecutableRegistry registry;
  npb::ResultSink sink;
  npb::registerNpb(registry, sink);
  core::Launcher launcher(platform, registry);
  launcher.startServices();
  auto result = launcher.run("npb.ep", "S", {{"vm0.ucsd.edu", 1},
                                             {"vm1.ucsd.edu", 1},
                                             {"vm2.ucsd.edu", 1},
                                             {"vm3.ucsd.edu", 1}});
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_EQ(sink.results().size(), 4u);
  EXPECT_TRUE(sink.allVerified());
  EXPECT_GT(sink.maxSeconds(), 0.0);
}

// ---------------------------------------------------------------- wavetoy --

TEST(WaveToy, RunsAndConservesEnergy) {
  core::topologies::AlphaClusterParams params;
  auto cfg = core::topologies::alphaCluster(params);
  ReferencePlatform platform(cfg);
  std::vector<std::string> hosts;
  for (const auto& h : platform.mapper().hosts()) hosts.push_back(h.hostname);
  auto results = std::make_shared<std::vector<apps::WaveToyResult>>();
  for (int r = 0; r < 4; ++r) {
    platform.spawnOn(hosts[static_cast<size_t>(r)], "wt" + std::to_string(r),
                     [=](vos::HostContext& ctx) {
                       auto comm = vmpi::Comm::init(ctx, r, hosts);
                       apps::WaveToyParams p;
                       p.grid_edge = 50;
                       p.timesteps = 20;
                       results->push_back(apps::runWaveToy(*comm, ctx, p));
                       comm->finalize();
                     });
  }
  platform.run();
  ASSERT_EQ(results->size(), 4u);
  for (const auto& r : *results) EXPECT_TRUE(r.verified);
}

TEST(WaveToy, LargerGridTakesLonger) {
  auto timeFor = [](int edge) {
    auto cfg = core::topologies::alphaCluster();
    ReferencePlatform platform(cfg);
    grid::ExecutableRegistry registry;
    apps::WaveToySink sink;
    apps::registerWaveToy(registry, sink);
    core::Launcher launcher(platform, registry);
    launcher.startServices();
    auto result = launcher.run("cactus.wavetoy", std::to_string(edge) + " 20",
                               {{"vm0.ucsd.edu", 1},
                                {"vm1.ucsd.edu", 1},
                                {"vm2.ucsd.edu", 1},
                                {"vm3.ucsd.edu", 1}});
    EXPECT_TRUE(result.ok) << result.error;
    EXPECT_TRUE(sink.allVerified());
    return sink.maxSeconds();
  };
  const double t50 = timeFor(50);
  const double t250 = timeFor(250);
  // 250^3 / 50^3 = 125x the work; communication dilutes the ratio.
  EXPECT_GT(t250, 20.0 * t50);
}

TEST(WaveToy, InvalidParamsThrow) {
  auto cfg = core::topologies::alphaCluster();
  ReferencePlatform platform(cfg);
  bool threw = false;
  platform.spawnOn("vm0.ucsd.edu", "w", [&](vos::HostContext& ctx) {
    auto comm = vmpi::Comm::init(ctx, 0, {"vm0.ucsd.edu"});
    apps::WaveToyParams p;
    p.grid_edge = 1;
    try {
      apps::runWaveToy(*comm, ctx, p);
    } catch (const mg::UsageError&) {
      threw = true;
    }
    comm->finalize();
  });
  platform.run();
  EXPECT_TRUE(threw);
}

// ------------------------------------------------------------- microbench --

TEST(Microbench, MemoryProbeFindsCapacity) {
  core::VirtualGridConfig cfg;
  cfg.addPhysical("p", 533e6);
  cfg.addHost("h", "1.1.1.1", 533e6, 512 * 1024, "p");
  ReferencePlatform platform(cfg);
  std::int64_t got = 0;
  platform.spawnOn("h", "probe",
                   [&](vos::HostContext& ctx) { got = apps::memoryProbe(ctx, 1024); });
  platform.run();
  EXPECT_EQ(got, 512 * 1024 - vos::MemoryManager::kProcessOverhead);
}

TEST(Microbench, CpuReferenceTiming) {
  auto cfg = core::topologies::alphaCluster();
  ReferencePlatform platform(cfg);
  double t = 0;
  platform.spawnOn("vm0.ucsd.edu", "ref",
                   [&](vos::HostContext& ctx) { t = apps::cpuReference(ctx, 533e6 / 2); });
  platform.run();
  EXPECT_NEAR(t, 0.5, 1e-9);
}

TEST(Microbench, PingPongShapes) {
  auto cfg = core::topologies::alphaCluster();
  ReferencePlatform platform(cfg);
  std::vector<std::string> hosts = {"vm0.ucsd.edu", "vm1.ucsd.edu"};
  auto points = std::make_shared<std::vector<apps::PingPongPoint>>();
  for (int r = 0; r < 2; ++r) {
    platform.spawnOn(hosts[static_cast<size_t>(r)], "pp" + std::to_string(r),
                     [=](vos::HostContext& ctx) {
                       auto comm = vmpi::Comm::init(ctx, r, hosts);
                       auto pts = apps::pingPong(*comm, {64, 4096, 262144});
                       if (r == 0) *points = pts;
                       comm->finalize();
                     });
  }
  platform.run();
  ASSERT_EQ(points->size(), 3u);
  // Latency grows with size; bandwidth grows toward saturation.
  EXPECT_LT((*points)[0].latency_seconds, (*points)[2].latency_seconds);
  EXPECT_LT((*points)[0].bandwidth_mbytes_s, (*points)[2].bandwidth_mbytes_s);
  EXPECT_LT((*points)[2].bandwidth_mbytes_s, 12.5);  // under the 100 Mb/s wire
}

// -------------------------------------------------------------- autopilot --

TEST(Autopilot, SensorRegistryBasics) {
  autopilot::SensorRegistry reg;
  EXPECT_FALSE(reg.has("x"));
  reg.set("x", 1.5);
  reg.increment("x", 0.5);
  reg.increment("y");
  EXPECT_DOUBLE_EQ(reg.get("x"), 2.0);
  EXPECT_DOUBLE_EQ(reg.get("y"), 1.0);
  EXPECT_EQ(reg.names().size(), 2u);
  EXPECT_THROW(reg.get("zz"), mg::UsageError);
}

TEST(Autopilot, SamplerRecordsPeriodically) {
  auto cfg = core::topologies::alphaCluster();
  ReferencePlatform platform(cfg);
  autopilot::SensorRegistry reg;
  autopilot::Sampler sampler(reg);
  platform.spawnOn("vm0.ucsd.edu", "app", [&](vos::HostContext& ctx) {
    for (int i = 0; i < 10; ++i) {
      reg.set("app.progress", i % 4);
      ctx.sleep(1.0);
    }
    sampler.stop();
  });
  platform.spawnOn("vm1.ucsd.edu", "autopilot",
                   [&](vos::HostContext& ctx) { sampler.run(ctx, 1.0); });
  platform.run();
  const auto& trace = sampler.trace("app.progress");
  EXPECT_GE(trace.size(), 8u);
  // Samples arrive on the virtual-second grid.
  EXPECT_NEAR(trace[1].first - trace[0].first, 1.0, 1e-6);
}

TEST(Autopilot, NpbSensorBoardPublishesProgress) {
  auto cfg = core::topologies::alphaCluster();
  ReferencePlatform platform(cfg);
  autopilot::SensorRegistry board;
  npb::setSensorBoard(&board);
  auto results = runOn(platform, npb::Benchmark::EP, npb::NpbClass::S, 2);
  npb::setSensorBoard(nullptr);
  EXPECT_TRUE(board.has("EP.progress"));
}

TEST(Autopilot, Fig17StyleSkewIsSmall) {
  // Sample the same deterministic app on both platforms and compare traces
  // with the paper's RMS metric — the internal-validation methodology.
  auto traceOn = [](core::Platform& platform) {
    autopilot::SensorRegistry reg;
    auto sampler = std::make_shared<autopilot::Sampler>(reg);
    platform.spawnOn("vm0.ucsd.edu", "app", [&reg, sampler](vos::HostContext& ctx) {
      // A slowly varying monitored variable (period >> sample interval);
      // fast sawtooths would alias small timing shifts into large value
      // differences.
      for (int i = 0; i < 40; ++i) {
        reg.set("app.v", (i / 4) % 5);
        ctx.compute(533e6 * 0.5);  // 0.5 virtual seconds
      }
      sampler->stop();
    });
    platform.spawnOn("vm1.ucsd.edu", "autopilot",
                     [sampler](vos::HostContext& ctx) { sampler->run(ctx, 0.5); });
    platform.run();
    return sampler->trace("app.v");
  };
  auto cfg = core::topologies::alphaCluster();
  ReferencePlatform ref(cfg);
  auto ref_trace = traceOn(ref);
  MicroGridPlatform emu(cfg);
  auto emu_trace = traceOn(emu);
  ASSERT_GE(ref_trace.size(), 10u);
  ASSERT_GE(emu_trace.size(), 10u);
  const double skew = util::rmsPercentSkew(ref_trace, emu_trace);
  EXPECT_LT(skew, 15.0);  // the paper saw 2-8% on smoother workloads
}
