// Tests for the GIS: DNs, records, filters, directory search, and the Fig 3
// virtual-resource schema. (The network service round-trip is covered in
// core_test.cpp, where a platform provides sockets.)
#include <gtest/gtest.h>

#include "gis/directory.h"
#include "gis/filter.h"
#include "gis/record.h"
#include "gis/schema.h"

using namespace mg::gis;

// --------------------------------------------------------------------- Dn --

TEST(Dn, ParseAndRender) {
  Dn dn = Dn::parse("hn=vm.ucsd.edu, ou=Concurrent Systems Architecture Group, o=Grid");
  ASSERT_EQ(dn.depth(), 3u);
  EXPECT_EQ(dn.rdns()[0].attr, "hn");
  EXPECT_EQ(dn.rdns()[0].value, "vm.ucsd.edu");
  EXPECT_EQ(dn.str(), "hn=vm.ucsd.edu, ou=Concurrent Systems Architecture Group, o=Grid");
}

TEST(Dn, AttrIsCaseNormalized) {
  Dn dn = Dn::parse("HN=x, OU=y");
  EXPECT_EQ(dn.rdns()[0].attr, "hn");
  EXPECT_EQ(dn.rdns()[1].attr, "ou");
}

TEST(Dn, ParentAndChild) {
  Dn base = Dn::parse("ou=CSAG, o=Grid");
  Dn child = base.child("hn", "vm0");
  EXPECT_EQ(child.str(), "hn=vm0, ou=CSAG, o=Grid");
  EXPECT_EQ(child.parent(), base);
  EXPECT_TRUE(Dn{}.parent().empty());
}

TEST(Dn, IsWithin) {
  Dn base = Dn::parse("ou=CSAG, o=Grid");
  Dn host = Dn::parse("hn=vm0, ou=CSAG, o=Grid");
  Dn other = Dn::parse("hn=vm0, ou=Other, o=Grid");
  EXPECT_TRUE(host.isWithin(base));
  EXPECT_TRUE(base.isWithin(base));
  EXPECT_FALSE(other.isWithin(base));
  EXPECT_FALSE(base.isWithin(host));
  EXPECT_TRUE(host.isWithin(Dn{}));  // everything is under the root
}

TEST(Dn, MalformedThrows) {
  EXPECT_THROW(Dn::parse("novalue"), mg::ParseError);
  EXPECT_THROW(Dn::parse("=x"), mg::ParseError);
  EXPECT_THROW(Dn::parse("a=, b=c"), mg::ParseError);
}

// ----------------------------------------------------------------- Record --

TEST(Record, MultiValuedAttributes) {
  Record r(Dn::parse("hn=vm0, o=Grid"));
  r.add("Member", "a");
  r.add("member", "b");
  EXPECT_EQ(r.getAll("MEMBER"), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(r.get("member"), "a");
  r.set("member", "only");
  EXPECT_EQ(r.getAll("member"), (std::vector<std::string>{"only"}));
}

TEST(Record, MissingAttributeBehaviour) {
  Record r(Dn::parse("hn=x, o=g"));
  EXPECT_FALSE(r.has("cpu"));
  EXPECT_THROW(r.get("cpu"), mg::Error);
  EXPECT_EQ(r.get("cpu", "def"), "def");
}

TEST(Record, LdifRoundTrip) {
  Record r(Dn::parse("hn=vm.ucsd.edu, o=Grid"));
  r.add("Is_Virtual_Resource", "Yes");
  r.add("CpuSpeed", "533Mops");
  const std::string ldif = r.toLdif();
  Record back = Record::fromLdif(ldif);
  EXPECT_EQ(back.dn(), r.dn());
  EXPECT_EQ(back.get("is_virtual_resource"), "Yes");
  EXPECT_EQ(back.get("cpuspeed"), "533Mops");
}

TEST(Record, FromLdifErrors) {
  EXPECT_THROW(Record::fromLdif("cpu: 5\n"), mg::ParseError);       // no dn
  EXPECT_THROW(Record::fromLdif("dn: hn=x, o=g\nbadline\n"), mg::ParseError);
}

// ----------------------------------------------------------------- Filter --

namespace {
Record vmRecord() {
  Record r(Dn::parse("hn=vm0.ucsd.edu, ou=CSAG, o=Grid"));
  r.add("objectclass", "GridComputeResource");
  r.add("Is_Virtual_Resource", "Yes");
  r.add("Configuration_Name", "Slow_CPU_Configuration");
  r.add("CpuSpeed", "10Mops");
  return r;
}
}  // namespace

TEST(Filter, Equality) {
  EXPECT_TRUE(Filter::parse("(Is_Virtual_Resource=Yes)").matches(vmRecord()));
  EXPECT_FALSE(Filter::parse("(Is_Virtual_Resource=No)").matches(vmRecord()));
  EXPECT_TRUE(Filter::parse("(IS_VIRTUAL_RESOURCE=Yes)").matches(vmRecord()));  // attr case
}

TEST(Filter, WildcardAndPresence) {
  EXPECT_TRUE(Filter::parse("(hostName=*)").matches([] {
    Record r = vmRecord();
    r.add("hostName", "vm0.ucsd.edu");
    return r;
  }()));
  EXPECT_FALSE(Filter::parse("(hostName=*)").matches(vmRecord()));
  EXPECT_TRUE(Filter::parse("(Configuration_Name=Slow_*)").matches(vmRecord()));
  EXPECT_FALSE(Filter::parse("(Configuration_Name=Fast_*)").matches(vmRecord()));
}

TEST(Filter, BooleanCombinators) {
  EXPECT_TRUE(Filter::parse("(&(Is_Virtual_Resource=Yes)(CpuSpeed=10Mops))").matches(vmRecord()));
  EXPECT_FALSE(Filter::parse("(&(Is_Virtual_Resource=Yes)(CpuSpeed=99))").matches(vmRecord()));
  EXPECT_TRUE(Filter::parse("(|(CpuSpeed=99)(CpuSpeed=10Mops))").matches(vmRecord()));
  EXPECT_TRUE(Filter::parse("(!(CpuSpeed=99))").matches(vmRecord()));
  EXPECT_FALSE(Filter::parse("(!(Is_Virtual_Resource=Yes))").matches(vmRecord()));
  EXPECT_TRUE(
      Filter::parse("(&(|(a=1)(Is_Virtual_Resource=Yes))(!(a=2)))").matches(vmRecord()));
}

TEST(Filter, EmptyMatchesAll) {
  EXPECT_TRUE(Filter::parse("").matches(vmRecord()));
  EXPECT_TRUE(Filter::matchAll().matches(Record{}));
}

TEST(Filter, MalformedThrows) {
  EXPECT_THROW(Filter::parse("(a=b"), mg::ParseError);
  EXPECT_THROW(Filter::parse("a=b)"), mg::ParseError);
  EXPECT_THROW(Filter::parse("(&)"), mg::ParseError);
  EXPECT_THROW(Filter::parse("(=x)"), mg::ParseError);
  EXPECT_THROW(Filter::parse("(a=b)(c=d)"), mg::ParseError);  // trailing
}

TEST(Filter, RoundTripStr) {
  const std::string text = "(&(a=1)(!(b=2))(|(c=3)(d=*)))";
  EXPECT_EQ(Filter::parse(text).str(), text);
}

// -------------------------------------------------------------- Directory --

namespace {
Directory sampleDir() {
  Directory dir;
  Record org(Dn::parse("ou=CSAG, o=Grid"));
  org.add("objectclass", "organizationalUnit");
  dir.add(org);
  for (int i = 0; i < 3; ++i) {
    Record r(Dn::parse("hn=vm" + std::to_string(i) + ", ou=CSAG, o=Grid"));
    r.add("objectclass", "GridComputeResource");
    r.add("Is_Virtual_Resource", i < 2 ? "Yes" : "No");
    dir.add(r);
  }
  Record deep(Dn::parse("cpu=0, hn=vm0, ou=CSAG, o=Grid"));
  deep.add("objectclass", "cpu");
  dir.add(deep);
  return dir;
}
}  // namespace

TEST(Directory, AddFindRemove) {
  Directory dir = sampleDir();
  EXPECT_EQ(dir.size(), 5u);
  const Dn dn = Dn::parse("hn=vm1, ou=CSAG, o=Grid");
  ASSERT_NE(dir.find(dn), nullptr);
  EXPECT_TRUE(dir.remove(dn));
  EXPECT_FALSE(dir.remove(dn));
  EXPECT_EQ(dir.size(), 4u);
}

TEST(Directory, DuplicateAddThrowsUpsertReplaces) {
  Directory dir = sampleDir();
  Record dup(Dn::parse("hn=vm0, ou=CSAG, o=Grid"));
  EXPECT_THROW(dir.add(dup), mg::ConfigError);
  dup.add("new", "attr");
  dir.upsert(dup);
  EXPECT_EQ(dir.size(), 5u);
  EXPECT_TRUE(dir.find(dup.dn())->has("new"));
}

TEST(Directory, ScopedSearch) {
  Directory dir = sampleDir();
  const Dn base = Dn::parse("ou=CSAG, o=Grid");
  EXPECT_EQ(dir.search(base, Scope::Base, Filter::matchAll()).size(), 1u);
  EXPECT_EQ(dir.search(base, Scope::OneLevel, Filter::matchAll()).size(), 3u);
  EXPECT_EQ(dir.search(base, Scope::Subtree, Filter::matchAll()).size(), 5u);
}

TEST(Directory, FilteredSearch) {
  Directory dir = sampleDir();
  const Dn base = Dn::parse("o=Grid");
  auto virt = dir.search(base, Scope::Subtree, Filter::parse("(Is_Virtual_Resource=Yes)"));
  EXPECT_EQ(virt.size(), 2u);
}

TEST(Directory, LdifRoundTrip) {
  Directory dir = sampleDir();
  Directory back = Directory::fromLdif(dir.toLdif());
  EXPECT_EQ(back.size(), dir.size());
  EXPECT_NE(back.find(Dn::parse("cpu=0, hn=vm0, ou=CSAG, o=Grid")), nullptr);
}

TEST(Directory, ScopeStringConversions) {
  EXPECT_EQ(scopeFromString("sub"), Scope::Subtree);
  EXPECT_EQ(scopeFromString("BASE"), Scope::Base);
  EXPECT_EQ(scopeFromString("one"), Scope::OneLevel);
  EXPECT_THROW(scopeFromString("galaxy"), mg::ParseError);
  EXPECT_EQ(scopeToString(Scope::OneLevel), "one");
}

// ----------------------------------------------------------------- Schema --

TEST(Schema, VirtualHostRecordRoundTrip) {
  mg::vos::VirtualHostInfo info;
  info.hostname = "vm.ucsd.edu";
  info.virtual_ip = "1.11.11.1";
  info.cpu_ops = 533e6;
  info.memory_bytes = 100ll * 1024 * 1024;
  info.physical_host = "csag-226-67.ucsd.edu";
  const Dn base = Dn::parse("ou=CSAG, o=Grid");
  Record r = makeVirtualHostRecord(base, info, "Slow_CPU_Configuration");
  EXPECT_EQ(r.dn().str(), "hn=vm.ucsd.edu, ou=CSAG, o=Grid");
  EXPECT_EQ(r.get("Is_Virtual_Resource"), "Yes");
  EXPECT_EQ(r.get("Mapped_Physical_Resource"), "csag-226-67.ucsd.edu");

  auto back = hostInfoFromRecord(r);
  EXPECT_EQ(back.hostname, info.hostname);
  EXPECT_EQ(back.virtual_ip, info.virtual_ip);
  EXPECT_DOUBLE_EQ(back.cpu_ops, info.cpu_ops);
  EXPECT_EQ(back.memory_bytes, info.memory_bytes);
  EXPECT_EQ(back.physical_host, info.physical_host);
}

TEST(Schema, VirtualNetworkRecord) {
  const Dn base = Dn::parse("ou=CSAG, o=Grid");
  Record r = makeVirtualNetworkRecord(base, "1.11.11.0", "Slow_CPU_Configuration", "LAN", 100e6,
                                      0.050);
  EXPECT_EQ(r.dn().str(), "nn=1.11.11.0, ou=CSAG, o=Grid");
  EXPECT_EQ(r.get("nwType"), "LAN");
  auto speed = parseNetworkSpeed(r.get("speed"));
  EXPECT_DOUBLE_EQ(speed.bandwidth_bps, 100e6);
  EXPECT_NEAR(speed.latency_seconds, 0.050, 1e-9);
}

TEST(Schema, ConfigGroupingQueries) {
  Directory dir;
  const Dn base = Dn::parse("ou=CSAG, o=Grid");
  mg::vos::VirtualHostInfo a;
  a.hostname = "a";
  a.cpu_ops = 1e6;
  a.memory_bytes = 1024;
  mg::vos::VirtualHostInfo b = a;
  b.hostname = "b";
  dir.add(makeVirtualHostRecord(base, a, "cfg1"));
  dir.add(makeVirtualHostRecord(base, b, "cfg2"));
  dir.add(makeVirtualNetworkRecord(base, "1.11.11.0", "cfg1", "LAN", 1e6, 0.001));
  EXPECT_EQ(virtualHostsForConfig(dir, base, "cfg1").size(), 1u);
  EXPECT_EQ(virtualHostsForConfig(dir, base, "cfg2").size(), 1u);
  EXPECT_EQ(virtualNetworksForConfig(dir, base, "cfg1").size(), 1u);
  EXPECT_EQ(virtualNetworksForConfig(dir, base, "cfg2").size(), 0u);
}

TEST(Schema, ParseNetworkSpeedErrors) {
  EXPECT_THROW(parseNetworkSpeed("100Mbps"), mg::ParseError);
  EXPECT_THROW(parseNetworkSpeed(""), mg::ParseError);
}
