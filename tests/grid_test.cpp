// Focused tests for the grid middleware pieces not covered by the
// integration suites: wire framing, job-hosts parsing, GRAM cancellation
// and status polling.
#include <gtest/gtest.h>

#include "core/reference_platform.h"
#include "core/topologies.h"
#include "grid/coallocator.h"
#include "grid/gram.h"
#include "vos/wire.h"

using namespace mg;

// ------------------------------------------------------------- wire -------

namespace {

/// In-memory loopback StreamSocket for framing tests.
class LoopbackSocket : public vos::StreamSocket {
 public:
  void send(const void* data, std::size_t n) override {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }
  std::size_t recv(void* out, std::size_t max) override {
    const std::size_t n = std::min(max, buf_.size());
    std::copy_n(buf_.begin(), n, static_cast<std::uint8_t*>(out));
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(n));
    return n;  // 0 when drained = EOF
  }
  void close() override {}
  std::string peerHost() const override { return "loopback"; }

 private:
  std::deque<std::uint8_t> buf_;
};

}  // namespace

TEST(Wire, FrameRoundTrip) {
  LoopbackSocket sock;
  vos::sendFrame(sock, "hello");
  vos::sendFrame(sock, "");
  vos::sendFrame(sock, std::string(100000, 'x'));
  EXPECT_EQ(vos::recvFrame(sock), "hello");
  EXPECT_EQ(vos::recvFrame(sock), "");
  EXPECT_EQ(vos::recvFrame(sock).size(), 100000u);
}

TEST(Wire, TruncatedFrameThrows) {
  LoopbackSocket sock;
  const std::uint8_t bogus[4] = {0, 0, 0, 10};  // announces 10 bytes, sends none
  sock.send(bogus, 4);
  EXPECT_THROW(vos::recvFrame(sock), mg::Error);
}

TEST(Wire, OversizedFrameRejected) {
  LoopbackSocket sock;
  const std::uint8_t huge[4] = {0x7f, 0xff, 0xff, 0xff};
  sock.send(huge, 4);
  EXPECT_THROW(vos::recvFrame(sock), mg::Error);
}

TEST(Wire, EofMidPayloadThrows) {
  LoopbackSocket sock;
  const std::uint8_t hdr[4] = {0, 0, 0, 8};
  sock.send(hdr, 4);
  sock.send("abc", 3);  // 3 of 8 bytes
  EXPECT_THROW(vos::recvFrame(sock), mg::Error);
}

// --------------------------------------------------------- job hosts ------

TEST(JobHosts, FormatParseRoundTrip) {
  std::vector<grid::AllocationPart> parts = {{"a.edu", 2}, {"b.edu", 1}, {"c.edu", 4}};
  const std::string s = grid::formatJobHosts(parts);
  EXPECT_EQ(s, "a.edu:2,b.edu:1,c.edu:4");
  auto back = grid::parseJobHosts(s);
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back[0].host, "a.edu");
  EXPECT_EQ(back[2].count, 4);
}

TEST(JobHosts, MalformedThrows) {
  EXPECT_THROW(grid::parseJobHosts(""), mg::ParseError);
  EXPECT_THROW(grid::parseJobHosts("hostonly"), mg::ParseError);
  EXPECT_THROW(grid::parseJobHosts("h:0"), mg::ParseError);
  EXPECT_THROW(grid::parseJobHosts(":3"), mg::ParseError);
}

// ------------------------------------------------------------- GRAM -------

TEST(GramLifecycle, StatusProgressesAndCancelPendingWorks) {
  auto cfg = core::topologies::alphaCluster();
  core::ReferencePlatform platform(cfg);
  grid::ExecutableRegistry registry;
  registry.add("slow", [](grid::JobContext& jc) {
    jc.os.sleep(1.0);
    return 0;
  });
  grid::GatekeeperOptions gk_opts;
  // Stretch the jobmanager startup so a cancel can land while PENDING.
  gk_opts.jobmanager_startup_ops = 533e6;  // ~1 s
  platform.spawnOn("vm0.ucsd.edu", "gatekeeper", [&, gk_opts](vos::HostContext& ctx) {
    grid::serveGatekeeper(ctx, registry, gk_opts);
  });

  grid::JobStatus cancelled_status;
  grid::JobStatus active_then_done;
  bool cancel_active_rejected = false;
  platform.spawnOn("vm1.ucsd.edu", "client", [&](vos::HostContext& ctx) {
    ctx.sleep(0.01);
    grid::GramClient client(ctx);
    grid::Rsl rsl;
    rsl.set("executable", "slow");

    // Job 1: cancel while still pending.
    const std::string c1 = client.submit("vm0.ucsd.edu", rsl);
    EXPECT_EQ(client.status(c1).state, grid::JobState::Pending);
    client.cancel(c1);
    cancelled_status = client.wait(c1);

    // Job 2: watch it go active, try to cancel (rejected), then wait.
    const std::string c2 = client.submit("vm0.ucsd.edu", rsl);
    ctx.sleep(1.5);  // past jobmanager startup
    EXPECT_EQ(client.status(c2).state, grid::JobState::Active);
    try {
      client.cancel(c2);
    } catch (const mg::Error&) {
      cancel_active_rejected = true;
    }
    active_then_done = client.wait(c2);
  });
  platform.run();
  EXPECT_EQ(cancelled_status.state, grid::JobState::Cancelled);
  EXPECT_TRUE(cancel_active_rejected);
  EXPECT_EQ(active_then_done.state, grid::JobState::Done);
}

TEST(GramLifecycle, JobStateNames) {
  EXPECT_EQ(grid::jobStateName(grid::JobState::Pending), "PENDING");
  EXPECT_EQ(grid::jobStateName(grid::JobState::Active), "ACTIVE");
  EXPECT_EQ(grid::jobStateName(grid::JobState::Done), "DONE");
  EXPECT_EQ(grid::jobStateName(grid::JobState::Failed), "FAILED");
  EXPECT_EQ(grid::jobStateName(grid::JobState::Cancelled), "CANCELLED");
}

TEST(GramLifecycle, StatusOfUnknownJobFails) {
  auto cfg = core::topologies::alphaCluster();
  core::ReferencePlatform platform(cfg);
  grid::ExecutableRegistry registry;
  registry.add("noop", [](grid::JobContext&) { return 0; });
  platform.spawnOn("vm0.ucsd.edu", "gatekeeper",
                   [&](vos::HostContext& ctx) { grid::serveGatekeeper(ctx, registry); });
  bool threw = false;
  bool bad_contact_threw = false;
  platform.spawnOn("vm1.ucsd.edu", "client", [&](vos::HostContext& ctx) {
    ctx.sleep(0.01);
    grid::GramClient client(ctx);
    try {
      client.status("vm0.ucsd.edu#999");
    } catch (const mg::Error&) {
      threw = true;
    }
    try {
      client.status("no-hash-here");
    } catch (const mg::UsageError&) {
      bad_contact_threw = true;
    }
  });
  platform.run();
  EXPECT_TRUE(threw);
  EXPECT_TRUE(bad_contact_threw);
}
