// Focused tests for the grid middleware pieces not covered by the
// integration suites: wire framing, job-hosts parsing, GRAM cancellation
// and status polling.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/reference_platform.h"
#include "core/topologies.h"
#include "grid/coallocator.h"
#include "grid/gram.h"
#include "vos/wire.h"

using namespace mg;

// ------------------------------------------------------------- wire -------

namespace {

/// In-memory loopback StreamSocket for framing tests.
class LoopbackSocket : public vos::StreamSocket {
 public:
  void send(const void* data, std::size_t n) override {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }
  std::size_t recv(void* out, std::size_t max) override {
    const std::size_t n = std::min(max, buf_.size());
    std::copy_n(buf_.begin(), n, static_cast<std::uint8_t*>(out));
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(n));
    return n;  // 0 when drained = EOF
  }
  void close() override {}
  std::string peerHost() const override { return "loopback"; }

 private:
  std::deque<std::uint8_t> buf_;
};

}  // namespace

TEST(Wire, FrameRoundTrip) {
  LoopbackSocket sock;
  vos::sendFrame(sock, "hello");
  vos::sendFrame(sock, "");
  vos::sendFrame(sock, std::string(100000, 'x'));
  EXPECT_EQ(vos::recvFrame(sock), "hello");
  EXPECT_EQ(vos::recvFrame(sock), "");
  EXPECT_EQ(vos::recvFrame(sock).size(), 100000u);
}

TEST(Wire, TruncatedFrameThrows) {
  LoopbackSocket sock;
  const std::uint8_t bogus[4] = {0, 0, 0, 10};  // announces 10 bytes, sends none
  sock.send(bogus, 4);
  EXPECT_THROW(vos::recvFrame(sock), mg::Error);
}

TEST(Wire, OversizedFrameRejected) {
  LoopbackSocket sock;
  const std::uint8_t huge[4] = {0x7f, 0xff, 0xff, 0xff};
  sock.send(huge, 4);
  EXPECT_THROW(vos::recvFrame(sock), mg::Error);
}

TEST(Wire, EofMidPayloadThrows) {
  LoopbackSocket sock;
  const std::uint8_t hdr[4] = {0, 0, 0, 8};
  sock.send(hdr, 4);
  sock.send("abc", 3);  // 3 of 8 bytes
  EXPECT_THROW(vos::recvFrame(sock), mg::Error);
}

// --------------------------------------------------------- job hosts ------

TEST(JobHosts, FormatParseRoundTrip) {
  std::vector<grid::AllocationPart> parts = {{"a.edu", 2}, {"b.edu", 1}, {"c.edu", 4}};
  const std::string s = grid::formatJobHosts(parts);
  EXPECT_EQ(s, "a.edu:2,b.edu:1,c.edu:4");
  auto back = grid::parseJobHosts(s);
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back[0].host, "a.edu");
  EXPECT_EQ(back[2].count, 4);
}

TEST(JobHosts, MalformedThrows) {
  EXPECT_THROW(grid::parseJobHosts(""), mg::ParseError);
  EXPECT_THROW(grid::parseJobHosts("hostonly"), mg::ParseError);
  EXPECT_THROW(grid::parseJobHosts("h:0"), mg::ParseError);
  EXPECT_THROW(grid::parseJobHosts(":3"), mg::ParseError);
}

// ------------------------------------------------------------- GRAM -------

TEST(GramLifecycle, StatusProgressesAndCancelPendingWorks) {
  auto cfg = core::topologies::alphaCluster();
  core::ReferencePlatform platform(cfg);
  grid::ExecutableRegistry registry;
  registry.add("slow", [](grid::JobContext& jc) {
    jc.os.sleep(1.0);
    return 0;
  });
  grid::GatekeeperOptions gk_opts;
  // Stretch the jobmanager startup so a cancel can land while PENDING.
  gk_opts.jobmanager_startup_ops = 533e6;  // ~1 s
  platform.spawnOn("vm0.ucsd.edu", "gatekeeper", [&, gk_opts](vos::HostContext& ctx) {
    grid::serveGatekeeper(ctx, registry, gk_opts);
  });

  grid::JobStatus cancelled_status;
  grid::JobStatus active_then_done;
  bool cancel_active_rejected = false;
  platform.spawnOn("vm1.ucsd.edu", "client", [&](vos::HostContext& ctx) {
    ctx.sleep(0.01);
    grid::GramClient client(ctx);
    grid::Rsl rsl;
    rsl.set("executable", "slow");

    // Job 1: cancel while still pending.
    const std::string c1 = client.submit("vm0.ucsd.edu", rsl);
    EXPECT_EQ(client.status(c1).state, grid::JobState::Pending);
    client.cancel(c1);
    cancelled_status = client.wait(c1);

    // Job 2: watch it go active, try to cancel (rejected), then wait.
    const std::string c2 = client.submit("vm0.ucsd.edu", rsl);
    ctx.sleep(1.5);  // past jobmanager startup
    EXPECT_EQ(client.status(c2).state, grid::JobState::Active);
    try {
      client.cancel(c2);
    } catch (const mg::Error&) {
      cancel_active_rejected = true;
    }
    active_then_done = client.wait(c2);
  });
  platform.run();
  EXPECT_EQ(cancelled_status.state, grid::JobState::Cancelled);
  EXPECT_TRUE(cancel_active_rejected);
  EXPECT_EQ(active_then_done.state, grid::JobState::Done);
}

TEST(GramLifecycle, JobStateNames) {
  EXPECT_EQ(grid::jobStateName(grid::JobState::Pending), "PENDING");
  EXPECT_EQ(grid::jobStateName(grid::JobState::Active), "ACTIVE");
  EXPECT_EQ(grid::jobStateName(grid::JobState::Done), "DONE");
  EXPECT_EQ(grid::jobStateName(grid::JobState::Failed), "FAILED");
  EXPECT_EQ(grid::jobStateName(grid::JobState::Cancelled), "CANCELLED");
}

TEST(GramLifecycle, StatusOfUnknownJobFails) {
  auto cfg = core::topologies::alphaCluster();
  core::ReferencePlatform platform(cfg);
  grid::ExecutableRegistry registry;
  registry.add("noop", [](grid::JobContext&) { return 0; });
  platform.spawnOn("vm0.ucsd.edu", "gatekeeper",
                   [&](vos::HostContext& ctx) { grid::serveGatekeeper(ctx, registry); });
  bool threw = false;
  bool bad_contact_threw = false;
  platform.spawnOn("vm1.ucsd.edu", "client", [&](vos::HostContext& ctx) {
    ctx.sleep(0.01);
    grid::GramClient client(ctx);
    try {
      client.status("vm0.ucsd.edu#999");
    } catch (const mg::Error&) {
      threw = true;
    }
    try {
      client.status("no-hash-here");
    } catch (const mg::UsageError&) {
      bad_contact_threw = true;
    }
  });
  platform.run();
  EXPECT_TRUE(threw);
  EXPECT_TRUE(bad_contact_threw);
}

// ------------------------------------------------------- GRAM batch mode --

namespace {

/// Gatekeeper with the batch jobmanager mode on: `slots` cores, EASY policy.
grid::GatekeeperOptions batchOpts(int slots) {
  grid::GatekeeperOptions gk;
  gk.batch.enabled = true;
  gk.batch.queue.slots = slots;
  return gk;
}

}  // namespace

TEST(GramBatch, JobsQueueWhenSlotsAreBusy) {
  auto cfg = core::topologies::alphaCluster();
  core::ReferencePlatform platform(cfg);
  grid::ExecutableRegistry registry;
  registry.add("slow", [](grid::JobContext& jc) {
    jc.os.sleep(1.0);
    return 0;
  });
  platform.spawnOn("vm0.ucsd.edu", "gatekeeper", [&](vos::HostContext& ctx) {
    grid::serveGatekeeper(ctx, registry, batchOpts(2));
  });

  grid::JobStatus queued_mid;  // the queued job, while the first still runs
  grid::JobStatus first_done, second_done;
  platform.spawnOn("vm1.ucsd.edu", "client", [&](vos::HostContext& ctx) {
    ctx.sleep(0.01);
    grid::GramClient client(ctx);
    grid::Rsl rsl;
    rsl.set("executable", "slow");
    rsl.set("count", "2");  // fills both slots
    const std::string c1 = client.submit("vm0.ucsd.edu", rsl);
    const std::string c2 = client.submit("vm0.ucsd.edu", rsl);
    ctx.sleep(0.5);  // well past jobmanager startup
    queued_mid = client.status(c2);
    first_done = client.wait(c1);
    second_done = client.wait(c2);
  });
  platform.run();
  // Without batch mode both jobs would run concurrently; with 2 slots the
  // second must still be PENDING half a second in.
  EXPECT_EQ(queued_mid.state, grid::JobState::Pending);
  EXPECT_EQ(first_done.state, grid::JobState::Done);
  EXPECT_EQ(second_done.state, grid::JobState::Done);
  EXPECT_EQ(platform.simulator().metrics().counterValue("grid.batch.started"), 2);
}

TEST(GramBatch, CancelOfQueuedJobIsImmediate) {
  auto cfg = core::topologies::alphaCluster();
  core::ReferencePlatform platform(cfg);
  grid::ExecutableRegistry registry;
  registry.add("slow", [](grid::JobContext& jc) {
    jc.os.sleep(1.0);
    return 0;
  });
  platform.spawnOn("vm0.ucsd.edu", "gatekeeper", [&](vos::HostContext& ctx) {
    grid::serveGatekeeper(ctx, registry, batchOpts(1));
  });

  grid::JobStatus cancelled;
  grid::JobStatus runner;
  platform.spawnOn("vm1.ucsd.edu", "client", [&](vos::HostContext& ctx) {
    ctx.sleep(0.01);
    grid::GramClient client(ctx);
    grid::Rsl rsl;
    rsl.set("executable", "slow");
    const std::string c1 = client.submit("vm0.ucsd.edu", rsl);  // occupies the slot
    const std::string c2 = client.submit("vm0.ucsd.edu", rsl);  // queued behind it
    ctx.sleep(0.2);
    client.cancel(c2);
    cancelled = client.status(c2);  // no wait: the cancel must be immediate
    runner = client.wait(c1);
  });
  platform.run();
  EXPECT_EQ(cancelled.state, grid::JobState::Cancelled);
  EXPECT_EQ(runner.state, grid::JobState::Done);
  EXPECT_EQ(platform.simulator().metrics().counterValue("grid.batch.cancelled_queued"), 1);
  // The cancelled job never started.
  EXPECT_EQ(platform.simulator().metrics().counterValue("grid.batch.started"), 1);
}

TEST(GramBatch, DuplicateSubmitsGetUniqueIds) {
  auto cfg = core::topologies::alphaCluster();
  core::ReferencePlatform platform(cfg);
  grid::ExecutableRegistry registry;
  registry.add("noop", [](grid::JobContext&) { return 0; });
  platform.spawnOn("vm0.ucsd.edu", "gatekeeper", [&](vos::HostContext& ctx) {
    grid::serveGatekeeper(ctx, registry, batchOpts(4));
  });

  std::vector<std::string> contacts;
  platform.spawnOn("vm1.ucsd.edu", "client", [&](vos::HostContext& ctx) {
    ctx.sleep(0.01);
    grid::GramClient client(ctx);
    grid::Rsl rsl;
    rsl.set("executable", "noop");
    // Identical RSL, identical subject: each submission is its own job.
    for (int i = 0; i < 3; ++i) contacts.push_back(client.submit("vm0.ucsd.edu", rsl));
    for (const auto& c : contacts) EXPECT_EQ(client.wait(c).state, grid::JobState::Done);
  });
  platform.run();
  std::set<std::string> unique(contacts.begin(), contacts.end());
  EXPECT_EQ(unique.size(), 3u);
}

TEST(GramBatch, TooWideJobFailsAtQueueTime) {
  auto cfg = core::topologies::alphaCluster();
  core::ReferencePlatform platform(cfg);
  grid::ExecutableRegistry registry;
  registry.add("noop", [](grid::JobContext&) { return 0; });
  platform.spawnOn("vm0.ucsd.edu", "gatekeeper", [&](vos::HostContext& ctx) {
    grid::serveGatekeeper(ctx, registry, batchOpts(2));
  });
  grid::JobStatus st;
  platform.spawnOn("vm1.ucsd.edu", "client", [&](vos::HostContext& ctx) {
    ctx.sleep(0.01);
    grid::GramClient client(ctx);
    grid::Rsl rsl;
    rsl.set("executable", "noop");
    rsl.set("count", "3");  // wider than the 2-slot queue can ever run
    st = client.wait(client.submit("vm0.ucsd.edu", rsl));
  });
  platform.run();
  EXPECT_EQ(st.state, grid::JobState::Failed);
  EXPECT_NE(st.error.find("exceeds queue capacity"), std::string::npos);
}
