// Tests for the observability subsystem: the metrics registry, the trace
// bus, and the end-to-end wiring of both through the MicroGrid platform
// (ISSUE: every layer's accounting flows into one snapshot, and same-seed
// runs produce byte-identical observability output).
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/launcher.h"
#include "core/microgrid_platform.h"
#include "core/virtual_grid.h"
#include "gis/service.h"
#include "obs/metrics.h"
#include "obs/trace_bus.h"
#include "vmpi/comm.h"

namespace mo = mg::obs;

// --------------------------------------------------------------- registry --

TEST(Metrics, CounterCreateOrGetAndIncrement) {
  mo::MetricsRegistry reg;
  mo::Counter& a = reg.counter("layer.comp.hits");
  mo::Counter& b = reg.counter("layer.comp.hits");
  EXPECT_EQ(&a, &b);  // create-or-get returns the same instrument
  a.inc();
  b.inc(41);
  EXPECT_EQ(a.value(), 42);
  EXPECT_EQ(reg.counterValue("layer.comp.hits"), 42);
  EXPECT_EQ(reg.counterValue("no.such.counter"), 0);
}

TEST(Metrics, HandlesStayValidAcrossManyRegistrations) {
  // Instruments live in a deque: a handle resolved early must survive any
  // number of later registrations (this is the hot-path contract).
  mo::MetricsRegistry reg;
  mo::Counter& first = reg.counter("first");
  for (int i = 0; i < 1000; ++i) reg.counter("c" + std::to_string(i));
  first.inc(7);
  EXPECT_EQ(reg.counterValue("first"), 7);
}

TEST(Metrics, GaugeSetAndAdd) {
  mo::MetricsRegistry reg;
  mo::Gauge& g = reg.gauge("layer.comp.level");
  g.set(1.5);
  g.add(2.0);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  EXPECT_DOUBLE_EQ(reg.gaugeValue("layer.comp.level"), 3.5);
  EXPECT_DOUBLE_EQ(reg.gaugeValue("absent"), 0.0);
}

TEST(Metrics, HistogramBoundsApplyOnlyOnCreation) {
  mo::MetricsRegistry reg;
  auto& h1 = reg.histogram("h", 0.0, 10.0, 10);
  auto& h2 = reg.histogram("h", -5.0, 5.0, 99);  // ignored: already exists
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bins(), 10);
  EXPECT_DOUBLE_EQ(h2.lo(), 0.0);
  EXPECT_EQ(reg.findHistogram("absent"), nullptr);
  ASSERT_NE(reg.findHistogram("h"), nullptr);
}

TEST(Metrics, SnapshotTableIsNameSorted) {
  mo::MetricsRegistry reg;
  reg.counter("b.count").inc(2);
  reg.gauge("a.level").set(0.5);
  reg.counter("a.count").inc(1);
  reg.histogram("c.hist", 0.0, 1.0, 4).add(0.3);
  const std::string csv = reg.snapshotTable().renderCsv();
  // Registration order was b, a-gauge, a-counter, c; the table merges all
  // three instrument kinds into one name-sorted view.
  EXPECT_EQ(csv,
            "metric,type,value\n"
            "a.count,counter,1\n"
            "a.level,gauge,0.5\n"
            "b.count,counter,2\n"
            "c.hist,histogram,1 samples\n");
}

TEST(Metrics, SnapshotJsonIsByteStable) {
  mo::MetricsRegistry reg;
  reg.counter("z.count").inc(3);
  reg.gauge("g.level").set(0.25);
  reg.histogram("h.hist", 0.0, 2.0, 2).add(1.5);
  const std::string expected =
      "{\"counters\":{\"z.count\":3},"
      "\"gauges\":{\"g.level\":0.25},"
      "\"histograms\":{\"h.hist\":{\"lo\":0,\"hi\":2,\"total\":1,\"bins\":[0,1]}}}";
  EXPECT_EQ(reg.snapshotJson(), expected);
  EXPECT_EQ(reg.snapshotJson(), expected);  // stable across repeated calls
}

// -------------------------------------------------------------- trace bus --

TEST(TraceBus, DisabledChannelRecordsNothing) {
  mo::TraceBus bus;
  mo::TraceBus::Channel& ch = bus.channel("net.packet");
  EXPECT_FALSE(ch.enabled());
  ch.record(100, "drop", 1.0);
  EXPECT_TRUE(bus.events().empty());
}

TEST(TraceBus, PrefixEnableMatchesDottedComponents) {
  mo::TraceBus bus;
  auto& packet = bus.channel("net.packet");
  auto& sched = bus.channel("vos.sched");
  bus.setEnabled("net", true);
  EXPECT_TRUE(packet.enabled());
  EXPECT_FALSE(sched.enabled());
  // "net" must not match "network" — only exact names or dotted children.
  auto& network = bus.channel("network");
  EXPECT_FALSE(network.enabled());
  // Masks apply to channels created later, and later masks win.
  auto& flow = bus.channel("net.flow");
  EXPECT_TRUE(flow.enabled());
  bus.setEnabled("net.flow", false);
  EXPECT_FALSE(flow.enabled());
  EXPECT_TRUE(packet.enabled());
  // The empty prefix matches everything.
  bus.setEnabled("", true);
  EXPECT_TRUE(sched.enabled());
  EXPECT_TRUE(flow.enabled());
}

TEST(TraceBus, RecordSerializeAndAsTrace) {
  mo::TraceBus bus;
  auto& ch = bus.channel("vos.sched");
  bus.setEnabled("vos", true);
  ch.record(1000000000, "quantum", 0.5, "taskA");
  ch.record(2000000000, "quantum", 0.75);
  ch.record(2000000000, "other", 9.0);
  ASSERT_EQ(bus.events().size(), 3u);
  EXPECT_EQ(bus.serialize(),
            "1000000000 vos.sched quantum 0.5 taskA\n"
            "2000000000 vos.sched quantum 0.75\n"
            "2000000000 vos.sched other 9\n");
  const mg::util::Trace t = bus.asTrace("vos.sched", "quantum");
  ASSERT_EQ(t.size(), 2u);
  EXPECT_DOUBLE_EQ(t[0].first, 1.0);  // nanoseconds -> seconds
  EXPECT_DOUBLE_EQ(t[0].second, 0.5);
  EXPECT_DOUBLE_EQ(t[1].second, 0.75);
  bus.clear();
  EXPECT_TRUE(bus.events().empty());
}

// ------------------------------------------------------------- end to end --

namespace {

using namespace mg;

core::VirtualGridConfig smallGrid() {
  core::VirtualGridConfig cfg;
  cfg.addPhysical("workstation", 533e6);
  cfg.addHost("vm0.example.org", "1.11.11.1", 266e6, 1ll << 30, "workstation");
  cfg.addHost("vm1.example.org", "1.11.11.2", 266e6, 1ll << 30, "workstation");
  cfg.addRouter("switch0");
  cfg.addLink("eth0", "vm0.example.org", "switch0", 100e6, 50e-6);
  cfg.addLink("eth1", "vm1.example.org", "switch0", 100e6, 50e-6);
  return cfg;
}

// Run a tiny two-rank vmpi job through the full Launcher path (GIS,
// gatekeepers, co-allocation) and return the platform for inspection.
struct RunResult {
  std::unique_ptr<core::MicroGridPlatform> platform;
  std::string trace;
  std::string metrics_json;
  std::uint64_t events_executed = 0;
};

RunResult runObservedWorkload(bool enable_tracing) {
  RunResult out;
  core::VirtualGridConfig cfg = smallGrid();
  out.platform = std::make_unique<core::MicroGridPlatform>(cfg);
  if (enable_tracing) out.platform->simulator().traceBus().setEnabled("", true);

  grid::ExecutableRegistry registry;
  registry.add("obs.job", [](grid::JobContext& jc) {
    auto comm = vmpi::Comm::init(jc);
    jc.os.allocateMemory(1 << 20);
    jc.os.compute(10e6);
    double ranks = comm->rank();
    comm->allreduce(&ranks, 1, vmpi::Op::Sum);
    if (comm->rank() == 0) {
      // Resource discovery, so the gis.service.* counters see traffic.
      gis::GisClient client(jc.os, "vm0.example.org");
      auto recs = client.search("ou=MicroGrid, o=Grid", gis::Scope::Subtree,
                                "(Is_Virtual_Resource=Yes)");
      EXPECT_FALSE(recs.empty());
      client.close();
    }
    jc.os.freeMemory(1 << 20);
    comm->finalize();
    return 0;
  });
  core::Launcher launcher(*out.platform, registry);
  launcher.startServices(&cfg, "ObsGrid");
  auto result =
      launcher.run("obs.job", "", {{"vm0.example.org", 1}, {"vm1.example.org", 1}});
  EXPECT_TRUE(result.ok) << result.error;

  sim::Simulator& sim = out.platform->simulator();
  out.trace = sim.traceBus().serialize();
  out.metrics_json = sim.metrics().snapshotJson();
  out.events_executed = sim.eventsExecuted();
  return out;
}

// Minimal parser for the snapshot's counters section: returns the integer
// value of `name`, or -1 when the counter is absent.
long long jsonCounter(const std::string& json, const std::string& name) {
  const std::string key = "\"" + name + "\":";
  const auto pos = json.find(key);
  if (pos == std::string::npos) return -1;
  return std::stoll(json.substr(pos + key.size()));
}

}  // namespace

TEST(ObsEndToEnd, SnapshotCoversEveryLayer) {
  RunResult r = runObservedWorkload(/*enable_tracing=*/false);
  const std::string& j = r.metrics_json;
  // One counter per refactored layer must be present and non-zero: the
  // kernel, the packet network, TCP, the scheduler, the memory manager,
  // vmpi, the control-plane framing, and the GIS.
  EXPECT_GT(jsonCounter(j, "sim.kernel.events_executed"), 0) << j;
  EXPECT_GT(jsonCounter(j, "net.packet.delivered"), 0) << j;
  EXPECT_GT(jsonCounter(j, "net.tcp.segments_sent"), 0) << j;
  EXPECT_GT(jsonCounter(j, "vos.sched.quanta"), 0) << j;
  EXPECT_GT(jsonCounter(j, "vos.mem.allocations"), 0) << j;
  EXPECT_GT(jsonCounter(j, "vmpi.comm.messages_sent"), 0) << j;
  EXPECT_GT(jsonCounter(j, "vmpi.comm.collectives"), 0) << j;
  EXPECT_GT(jsonCounter(j, "vos.wire.frames_sent"), 0) << j;
  EXPECT_GT(jsonCounter(j, "gis.service.searches"), 0) << j;
  // The registry view and the kernel's own accessor agree.
  EXPECT_EQ(static_cast<std::uint64_t>(jsonCounter(j, "sim.kernel.events_executed")),
            r.events_executed);
}

TEST(ObsEndToEnd, LegacyStatsViewsAgreeWithRegistry) {
  RunResult r = runObservedWorkload(/*enable_tracing=*/false);
  // The thin stats() views are assembled from the registry, so a call site
  // reading the struct sees exactly the registry's numbers.
  const auto s = r.platform->network().stats();
  const auto& m = r.platform->simulator().metrics();
  EXPECT_EQ(s.packets_sent, m.counterValue("net.packet.sent"));
  EXPECT_EQ(s.packets_delivered, m.counterValue("net.packet.delivered"));
  EXPECT_GT(s.packets_sent, 0);
}

TEST(ObsEndToEnd, SameSeedRunsAreByteIdentical) {
  // The determinism acceptance test: two identically configured runs must
  // produce byte-identical trace streams and metrics snapshots.
  RunResult a = runObservedWorkload(/*enable_tracing=*/true);
  RunResult b = runObservedWorkload(/*enable_tracing=*/true);
  EXPECT_FALSE(a.trace.empty());
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
}
