// Tests for the observability subsystem: the metrics registry, the trace
// bus, causal span tracing, and the end-to-end wiring of all three through
// the MicroGrid platform (ISSUE: every layer's accounting flows into one
// snapshot, and same-seed runs produce byte-identical observability output).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>

#include "core/launcher.h"
#include "core/microgrid_platform.h"
#include "core/topologies.h"
#include "core/virtual_grid.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "gis/service.h"
#include "npb/npb.h"
#include "obs/lane.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/sampler.h"
#include "obs/sim_profiler.h"
#include "obs/span.h"
#include "obs/timeline.h"
#include "obs/trace_bus.h"
#include "obs/trace_export.h"
#include "sim/telemetry.h"
#include "util/error.h"
#include "util/strings.h"
#include "vmpi/comm.h"

#include "test_scenarios.h"

namespace mo = mg::obs;

// --------------------------------------------------------------- registry --

TEST(Metrics, CounterCreateOrGetAndIncrement) {
  mo::MetricsRegistry reg;
  mo::Counter& a = reg.counter("layer.comp.hits");
  mo::Counter& b = reg.counter("layer.comp.hits");
  EXPECT_EQ(&a, &b);  // create-or-get returns the same instrument
  a.inc();
  b.inc(41);
  EXPECT_EQ(a.value(), 42);
  EXPECT_EQ(reg.counterValue("layer.comp.hits"), 42);
  EXPECT_EQ(reg.counterValue("no.such.counter"), 0);
}

TEST(Metrics, HandlesStayValidAcrossManyRegistrations) {
  // Instruments live in a deque: a handle resolved early must survive any
  // number of later registrations (this is the hot-path contract).
  mo::MetricsRegistry reg;
  mo::Counter& first = reg.counter("first");
  for (int i = 0; i < 1000; ++i) reg.counter("c" + std::to_string(i));
  first.inc(7);
  EXPECT_EQ(reg.counterValue("first"), 7);
}

TEST(Metrics, GaugeSetAndAdd) {
  mo::MetricsRegistry reg;
  mo::Gauge& g = reg.gauge("layer.comp.level");
  g.set(1.5);
  g.add(2.0);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  EXPECT_DOUBLE_EQ(reg.gaugeValue("layer.comp.level"), 3.5);
  EXPECT_DOUBLE_EQ(reg.gaugeValue("absent"), 0.0);
}

TEST(Metrics, HistogramBoundsApplyOnlyOnCreation) {
  mo::MetricsRegistry reg;
  auto& h1 = reg.histogram("h", 0.0, 10.0, 10);
  auto& h2 = reg.histogram("h", -5.0, 5.0, 99);  // ignored: already exists
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bins(), 10);
  EXPECT_DOUBLE_EQ(h2.lo(), 0.0);
  EXPECT_EQ(reg.findHistogram("absent"), nullptr);
  ASSERT_NE(reg.findHistogram("h"), nullptr);
}

TEST(Metrics, SnapshotTableIsNameSorted) {
  mo::MetricsRegistry reg;
  reg.counter("b.count").inc(2);
  reg.gauge("a.level").set(0.5);
  reg.counter("a.count").inc(1);
  reg.histogram("c.hist", 0.0, 1.0, 4).add(0.3);
  const std::string csv = reg.snapshotTable().renderCsv();
  // Registration order was b, a-gauge, a-counter, c; the table merges all
  // three instrument kinds into one name-sorted view.
  EXPECT_EQ(csv,
            "metric,type,value\n"
            "a.count,counter,1\n"
            "a.level,gauge,0.5\n"
            "b.count,counter,2\n"
            "c.hist,histogram,1 samples\n");
}

TEST(Metrics, SnapshotJsonIsByteStable) {
  mo::MetricsRegistry reg;
  reg.counter("z.count").inc(3);
  reg.gauge("g.level").set(0.25);
  reg.histogram("h.hist", 0.0, 2.0, 2).add(1.5);
  const std::string expected =
      "{\"counters\":{\"z.count\":3},"
      "\"gauges\":{\"g.level\":0.25},"
      "\"histograms\":{\"h.hist\":{\"lo\":0,\"hi\":2,\"total\":1,\"bins\":[0,1]}}}";
  EXPECT_EQ(reg.snapshotJson(), expected);
  EXPECT_EQ(reg.snapshotJson(), expected);  // stable across repeated calls
}

TEST(Metrics, SnapshotCsvIsNameSortedAndStable) {
  mo::MetricsRegistry reg;
  reg.counter("b.count").inc(2);
  reg.gauge("a.level").set(0.5);
  reg.histogram("c.hist", 0.0, 1.0, 4).add(0.3);
  reg.histogram("c.hist", 0.0, 1.0, 4).add(0.9);
  const std::string expected =
      "metric,type,value\n"
      "a.level,gauge,0.5\n"
      "b.count,counter,2\n"
      "c.hist,histogram,2\n";
  EXPECT_EQ(reg.snapshotCsv(), expected);
  EXPECT_EQ(reg.snapshotCsv(), expected);
}

// -------------------------------------------------------------- trace bus --

TEST(TraceBus, DisabledChannelRecordsNothing) {
  mo::TraceBus bus;
  mo::TraceBus::Channel& ch = bus.channel("net.packet");
  EXPECT_FALSE(ch.enabled());
  ch.record(100, "drop", 1.0);
  EXPECT_TRUE(bus.events().empty());
}

TEST(TraceBus, PrefixEnableMatchesDottedComponents) {
  mo::TraceBus bus;
  auto& packet = bus.channel("net.packet");
  auto& sched = bus.channel("vos.sched");
  bus.setEnabled("net", true);
  EXPECT_TRUE(packet.enabled());
  EXPECT_FALSE(sched.enabled());
  // "net" must not match "network" — only exact names or dotted children.
  auto& network = bus.channel("network");
  EXPECT_FALSE(network.enabled());
  // Masks apply to channels created later, and later masks win.
  auto& flow = bus.channel("net.flow");
  EXPECT_TRUE(flow.enabled());
  bus.setEnabled("net.flow", false);
  EXPECT_FALSE(flow.enabled());
  EXPECT_TRUE(packet.enabled());
  // The empty prefix matches everything.
  bus.setEnabled("", true);
  EXPECT_TRUE(sched.enabled());
  EXPECT_TRUE(flow.enabled());
}

TEST(TraceBus, RecordSerializeAndAsTrace) {
  mo::TraceBus bus;
  auto& ch = bus.channel("vos.sched");
  bus.setEnabled("vos", true);
  ch.record(1000000000, "quantum", 0.5, "taskA");
  ch.record(2000000000, "quantum", 0.75);
  ch.record(2000000000, "other", 9.0);
  ASSERT_EQ(bus.events().size(), 3u);
  EXPECT_EQ(bus.serialize(),
            "1000000000 vos.sched quantum 0.5 taskA\n"
            "2000000000 vos.sched quantum 0.75\n"
            "2000000000 vos.sched other 9\n");
  const mg::util::Trace t = bus.asTrace("vos.sched", "quantum");
  ASSERT_EQ(t.size(), 2u);
  EXPECT_DOUBLE_EQ(t[0].first, 1.0);  // nanoseconds -> seconds
  EXPECT_DOUBLE_EQ(t[0].second, 0.5);
  EXPECT_DOUBLE_EQ(t[1].second, 0.75);
  bus.clear();
  EXPECT_TRUE(bus.events().empty());
}

TEST(TraceBus, SerializeRoundTripsValues) {
  // The %.9g rendering must survive a parse/re-record cycle byte-for-byte:
  // tooling that filters a trace and writes it back must not churn digits.
  mo::TraceBus bus;
  auto& ch = bus.channel("x.y");
  bus.setEnabled("", true);
  std::int64_t t = 1;
  for (double v : {0.1, 1.0 / 3.0, 12345.678901, 1e-9, 2.5e17, 0.30000000000000004}) {
    ch.record(t++, "v", v);
  }
  const std::string first = bus.serialize();

  mo::TraceBus bus2;
  auto& ch2 = bus2.channel("x.y");
  bus2.setEnabled("", true);
  std::istringstream in(first);
  std::string line;
  std::int64_t t2 = 1;
  while (std::getline(in, line)) {
    const auto fields = mg::util::splitWhitespace(line);
    ASSERT_GE(fields.size(), 4u) << line;
    ch2.record(t2++, "v", std::stod(fields[3]));
  }
  EXPECT_EQ(bus2.serialize(), first);
}

// ------------------------------------------------------------------ spans --

TEST(Spans, DisabledRecorderIsInert) {
  mo::SpanRecorder rec;
  EXPECT_EQ(rec.begin("a", "b"), 0u);
  EXPECT_EQ(rec.instant("a", "b"), 0u);
  mo::ScopedSpan s(rec, "a", "b");
  EXPECT_FALSE(s.active());
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.current(), 0u);
}

TEST(Spans, SequentialIdsAndScopedNesting) {
  mo::SpanRecorder rec;
  std::int64_t now = 100;
  rec.setTimeSource([&now] { return now; });
  rec.setEnabled(true);
  {
    mo::ScopedSpan outer(rec, "test", "outer", "hostA");
    EXPECT_EQ(outer.id(), 1u);
    EXPECT_EQ(rec.current(), 1u);
    now = 200;
    {
      mo::ScopedSpan inner(rec, "test", "inner", "hostA");
      EXPECT_EQ(inner.id(), 2u);
      EXPECT_EQ(rec.find(2)->parent, 1u);
      now = 300;
    }
    EXPECT_EQ(rec.current(), 1u);  // restored after inner closes
    EXPECT_EQ(rec.find(2)->end, 300);
  }
  EXPECT_EQ(rec.current(), 0u);
  EXPECT_EQ(rec.find(1)->parent, 0u);
  EXPECT_EQ(rec.find(1)->start, 100);
  EXPECT_EQ(rec.serializeTree(),
            "#1 parent=0 test.outer track=hostA start=100 end=300\n"
            "#2 parent=1 test.inner track=hostA start=200 end=300\n");
}

TEST(Spans, EndIsIdempotentAndAbortTrackMarksOpenSpans) {
  mo::SpanRecorder rec;
  std::int64_t now = 10;
  rec.setTimeSource([&now] { return now; });
  rec.setEnabled(true);
  const mo::SpanId done = rec.begin("test", "done", "h0");
  rec.end(done);
  const mo::SpanId doomed = rec.begin("test", "doomed", "h0");
  const mo::SpanId other = rec.begin("test", "other", "h1");
  now = 20;
  rec.abortTrack("h0", "host_crash");
  // The already-closed span keeps its original end and gains no attr; the
  // open one on h0 is closed with the aborted mark; h1 is untouched.
  EXPECT_TRUE(rec.find(done)->attrs.empty());
  EXPECT_EQ(rec.find(doomed)->end, 20);
  ASSERT_EQ(rec.find(doomed)->attrs.size(), 1u);
  EXPECT_EQ(rec.find(doomed)->attrs[0].first, "aborted");
  EXPECT_EQ(rec.find(doomed)->attrs[0].second, "host_crash");
  EXPECT_TRUE(rec.find(other)->open());
  // The RAII unwind's end() after the abort is a no-op.
  now = 30;
  rec.end(doomed);
  EXPECT_EQ(rec.find(doomed)->end, 20);
}

// ------------------------------------------------------------- end to end --

namespace {

using namespace mg;

core::VirtualGridConfig smallGrid() {
  core::VirtualGridConfig cfg;
  cfg.addPhysical("workstation", 533e6);
  cfg.addHost("vm0.example.org", "1.11.11.1", 266e6, 1ll << 30, "workstation");
  cfg.addHost("vm1.example.org", "1.11.11.2", 266e6, 1ll << 30, "workstation");
  cfg.addRouter("switch0");
  cfg.addLink("eth0", "vm0.example.org", "switch0", 100e6, 50e-6);
  cfg.addLink("eth1", "vm1.example.org", "switch0", 100e6, 50e-6);
  return cfg;
}

// Run a tiny two-rank vmpi job through the full Launcher path (GIS,
// gatekeepers, co-allocation) and return the platform for inspection.
struct RunResult {
  std::unique_ptr<core::MicroGridPlatform> platform;
  std::string trace;
  std::string metrics_json;
  std::uint64_t events_executed = 0;
};

RunResult runObservedWorkload(bool enable_tracing) {
  RunResult out;
  core::VirtualGridConfig cfg = smallGrid();
  out.platform = std::make_unique<core::MicroGridPlatform>(cfg);
  if (enable_tracing) out.platform->simulator().traceBus().setEnabled("", true);

  grid::ExecutableRegistry registry;
  registry.add("obs.job", [](grid::JobContext& jc) {
    auto comm = vmpi::Comm::init(jc);
    jc.os.allocateMemory(1 << 20);
    jc.os.compute(10e6);
    double ranks = comm->rank();
    comm->allreduce(&ranks, 1, vmpi::Op::Sum);
    if (comm->rank() == 0) {
      // Resource discovery, so the gis.service.* counters see traffic.
      gis::GisClient client(jc.os, "vm0.example.org");
      auto recs = client.search("ou=MicroGrid, o=Grid", gis::Scope::Subtree,
                                "(Is_Virtual_Resource=Yes)");
      EXPECT_FALSE(recs.empty());
      client.close();
    }
    jc.os.freeMemory(1 << 20);
    comm->finalize();
    return 0;
  });
  core::Launcher launcher(*out.platform, registry);
  launcher.startServices(&cfg, "ObsGrid");
  auto result =
      launcher.run("obs.job", "", {{"vm0.example.org", 1}, {"vm1.example.org", 1}});
  EXPECT_TRUE(result.ok) << result.error;

  sim::Simulator& sim = out.platform->simulator();
  out.trace = sim.traceBus().serialize();
  out.metrics_json = sim.metrics().snapshotJson();
  out.events_executed = sim.eventsExecuted();
  return out;
}

// NPB EP across both hosts with span recording on: the acceptance workload
// for the causal-trace determinism and parentage checks.
struct TracedRun {
  std::unique_ptr<core::MicroGridPlatform> platform;
  std::string tree;     // SpanRecorder::serializeTree()
  std::string chrome;   // obs::chromeTraceJson()
  std::string profile;  // obs::SimProfiler::json()
};

TracedRun runTracedEp() {
  TracedRun out;
  core::VirtualGridConfig cfg = smallGrid();
  out.platform = std::make_unique<core::MicroGridPlatform>(cfg);
  sim::Simulator& sim = out.platform->simulator();
  sim.spans().setEnabled(true);

  grid::ExecutableRegistry registry;
  npb::ResultSink sink;
  npb::registerNpb(registry, sink);
  core::Launcher launcher(*out.platform, registry);
  launcher.startServices(&cfg, "ObsGrid");
  auto result =
      launcher.run("npb.ep", "S", {{"vm0.example.org", 1}, {"vm1.example.org", 1}});
  EXPECT_TRUE(result.ok) << result.error;

  out.tree = sim.spans().serializeTree();
  out.chrome = obs::chromeTraceJson(sim.spans());
  out.profile = obs::SimProfiler(sim.spans()).json();
  return out;
}

// Does following parent links from `id` reach `root`?
bool reaches(const mo::SpanRecorder& rec, mo::SpanId id, mo::SpanId root) {
  for (const mo::SpanRecorder::Span* s = rec.find(id); s != nullptr; s = rec.find(s->parent)) {
    if (s->id == root) return true;
  }
  return false;
}

// Minimal parser for the snapshot's counters section: returns the integer
// value of `name`, or -1 when the counter is absent.
long long jsonCounter(const std::string& json, const std::string& name) {
  const std::string key = "\"" + name + "\":";
  const auto pos = json.find(key);
  if (pos == std::string::npos) return -1;
  return std::stoll(json.substr(pos + key.size()));
}

}  // namespace

TEST(ObsEndToEnd, SnapshotCoversEveryLayer) {
  RunResult r = runObservedWorkload(/*enable_tracing=*/false);
  const std::string& j = r.metrics_json;
  // One counter per refactored layer must be present and non-zero: the
  // kernel, the packet network, TCP, the scheduler, the memory manager,
  // vmpi, the control-plane framing, and the GIS.
  EXPECT_GT(jsonCounter(j, "sim.kernel.events_executed"), 0) << j;
  EXPECT_GT(jsonCounter(j, "net.packet.delivered"), 0) << j;
  EXPECT_GT(jsonCounter(j, "net.tcp.segments_sent"), 0) << j;
  EXPECT_GT(jsonCounter(j, "vos.sched.quanta"), 0) << j;
  EXPECT_GT(jsonCounter(j, "vos.mem.allocations"), 0) << j;
  EXPECT_GT(jsonCounter(j, "vmpi.comm.messages_sent"), 0) << j;
  EXPECT_GT(jsonCounter(j, "vmpi.comm.collectives"), 0) << j;
  EXPECT_GT(jsonCounter(j, "vos.wire.frames_sent"), 0) << j;
  EXPECT_GT(jsonCounter(j, "gis.service.searches"), 0) << j;
  // The registry view and the kernel's own accessor agree.
  EXPECT_EQ(static_cast<std::uint64_t>(jsonCounter(j, "sim.kernel.events_executed")),
            r.events_executed);
}

TEST(ObsEndToEnd, LegacyStatsViewsAgreeWithRegistry) {
  RunResult r = runObservedWorkload(/*enable_tracing=*/false);
  // The thin stats() views are assembled from the registry, so a call site
  // reading the struct sees exactly the registry's numbers.
  const auto s = r.platform->packetNetwork().stats();
  const auto& m = r.platform->simulator().metrics();
  EXPECT_EQ(s.packets_sent, m.counterValue("net.packet.sent"));
  EXPECT_EQ(s.packets_delivered, m.counterValue("net.packet.delivered"));
  EXPECT_GT(s.packets_sent, 0);
}

TEST(ObsEndToEnd, SameSeedRunsAreByteIdentical) {
  // The determinism acceptance test: two identically configured runs must
  // produce byte-identical trace streams and metrics snapshots.
  RunResult a = runObservedWorkload(/*enable_tracing=*/true);
  RunResult b = runObservedWorkload(/*enable_tracing=*/true);
  EXPECT_FALSE(a.trace.empty());
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
}

TEST(SpansEndToEnd, SameSeedEpRunsProduceByteIdenticalSpanTrees) {
  // ISSUE acceptance: same-seed NPB EP runs yield byte-identical span trees,
  // Chrome traces, and profiles.
  TracedRun a = runTracedEp();
  TracedRun b = runTracedEp();
  EXPECT_FALSE(a.tree.empty());
  EXPECT_EQ(a.tree, b.tree);
  EXPECT_EQ(a.chrome, b.chrome);
  EXPECT_EQ(a.profile, b.profile);
}

TEST(SpansEndToEnd, NetSpansHaveLiveParents) {
  // Every network-layer span must hang off a live causal chain: a TCP
  // segment or packet hop with parent 0 would mean causality got dropped at
  // a layer boundary.
  TracedRun r = runTracedEp();
  const mo::SpanRecorder& rec = r.platform->simulator().spans();
  int checked = 0;
  for (const auto& s : rec.spans()) {
    if (s.component.rfind("net.", 0) != 0) continue;
    EXPECT_NE(s.parent, 0u) << "orphan " << s.component << "." << s.name << " #" << s.id;
    EXPECT_NE(rec.find(s.parent), nullptr) << "dangling parent on #" << s.id;
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

TEST(SpansEndToEnd, JobSpanTransitivelyParentsEveryLayer) {
  // The headline acceptance criterion: one "core.launcher job" root span
  // transitively parents GRAM requests, the jobmanager, vmpi traffic, TCP
  // segments, per-hop packet forwarding, and scheduler quanta.
  TracedRun r = runTracedEp();
  const mo::SpanRecorder& rec = r.platform->simulator().spans();

  mo::SpanId root = 0;
  for (const auto& s : rec.spans()) {
    if (s.component == "core.launcher" && s.name == "job") {
      EXPECT_EQ(root, 0u) << "more than one job root span";
      root = s.id;
    }
  }
  ASSERT_NE(root, 0u);

  std::map<std::string, int> descendants;  // component -> spans under root
  for (const auto& s : rec.spans()) {
    if (s.id != root && reaches(rec, s.id, root)) ++descendants[s.component];
  }
  for (const char* comp : {"grid.gram", "grid.job", "vmpi.comm", "vmpi.coll", "net.tcp",
                           "net.packet", "vos.sched"}) {
    EXPECT_GT(descendants[comp], 0) << "no " << comp << " span descends from the job root";
  }
}

TEST(SpansEndToEnd, ProfilerAggregatesPerHostPerLayer) {
  TracedRun r = runTracedEp();
  const obs::SimProfiler prof(r.platform->simulator().spans());
  ASSERT_FALSE(prof.buckets().empty());
  bool saw_quantum = false, saw_tcp = false;
  for (const auto& b : prof.buckets()) {
    EXPECT_GT(b.count, 0);
    EXPECT_GE(b.p99_ns, b.p50_ns);
    if (b.span == "vos.sched.quantum") saw_quantum = true;
    if (b.span == "net.tcp.segment") saw_tcp = true;
  }
  EXPECT_TRUE(saw_quantum);
  EXPECT_TRUE(saw_tcp);
  // Both renderings exist and the table carries one row per bucket.
  EXPECT_EQ(prof.table().rowCount(), prof.buckets().size());
}

TEST(SpansEndToEnd, ChromeTraceIsWellFormedJson) {
  // Cheap structural checks (CI runs the real validator, python3 -m
  // json.tool, on an mgrun-produced trace).
  TracedRun r = runTracedEp();
  EXPECT_EQ(r.chrome.rfind("{\"traceEvents\":[", 0), 0u) << r.chrome.substr(0, 80);
  EXPECT_EQ(r.chrome.substr(r.chrome.size() - 4), "\n]}\n");
  EXPECT_NE(r.chrome.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(r.chrome.find("\"name\":\"thread_name\""), std::string::npos);
}

// --------------------------- cross-worker determinism (ISSUE 5 golden run) --

namespace {

/// The golden workload: NPB EP through the full launcher path on the Alpha
/// cluster with a fault plan (vm3 crashes mid-run and restarts, eth1 runs at
/// 5% loss throughout) under the parallel lane engine. Every observable
/// stream is captured; the tests below require them byte-identical at every
/// worker count.
struct GoldenRun {
  std::string metrics;   // MetricsRegistry::snapshotJson()
  std::string spans;     // SpanRecorder::serializeTree()
  std::string trace;     // TraceBus::serialize()
  std::string profile;   // SimProfiler::json()
  std::string report;    // fault availability report
  std::string timeline;  // TimeSeriesRecorder::csv() (sampled at 50 ms)
  double virtual_seconds = 0;
  int resubmits = 0;
};

GoldenRun runGoldenEpWithFaults(int workers) {
  mgtest::HarnessOptions hopts;
  hopts.parallel_workers = workers;
  hopts.spans = true;
  hopts.trace_bus = true;
  mgtest::LauncherHarness h(hopts);
  sim::Simulator& sim = h.platform.simulator();

  npb::ResultSink sink;
  npb::registerNpb(h.registry, sink);

  fault::FaultPlan plan;
  plan.add(mgtest::crashVm3(1.0, 3.0));
  plan.add(mgtest::lossyEth1(0.05, 60.0));
  fault::FaultInjector& injector = h.armFaults(std::move(plan));

  // Sample the full probe set during the run: the timeline CSV below is one
  // of the streams the worker-count-invisibility test compares.
  sim.timeline().setBaseWidth(50 * sim::kMillisecond);
  obs::TelemetrySampler::Options sopts;
  sopts.interval_ns = 50 * sim::kMillisecond;
  obs::TelemetrySampler sampler(sim.timeline(), sim::telemetryHost(sim), sopts);
  h.platform.registerTelemetry(sampler);
  sampler.start();

  auto result = h.launcher.run("npb.ep", "S", mgtest::LauncherHarness::fourRanks());
  EXPECT_TRUE(result.ok) << result.error;

  sampler.finish();

  GoldenRun out;
  out.metrics = sim.metrics().snapshotJson();
  out.spans = sim.spans().serializeTree();
  out.trace = sim.traceBus().serialize();
  out.profile = obs::SimProfiler(sim.spans()).json();
  out.report = injector.renderReport();
  out.timeline = sim.timeline().csv();
  out.virtual_seconds = result.virtual_seconds;
  out.resubmits = result.resubmits;
  return out;
}

}  // namespace

TEST(ParallelGolden, WorkerCountIsInvisibleInEveryObservableStream) {
  // The tentpole acceptance criterion: `--parallel=N` is a pure speed knob.
  // Metrics snapshot, span tree, trace bus, profiler output, the fault
  // availability report, and job-level results must be byte-identical at
  // 1, 2, 4, and 8 workers — under crash + resubmission + stochastic loss.
  const GoldenRun one = runGoldenEpWithFaults(1);
  // The parallel engine really engaged (uniform-latency star: 4 hosts + the
  // switch shard into 5 wire partitions + the process lane) and traffic
  // actually crossed partitions.
  EXPECT_NE(one.metrics.find("\"sim.parallel.lanes\":6"), std::string::npos) << one.metrics;
  EXPECT_GT(jsonCounter(one.metrics, "sim.parallel.mailbox_msgs"), 0);
  EXPECT_EQ(jsonCounter(one.metrics, "sim.parallel.horizon_violations"), 0);
  EXPECT_GT(jsonCounter(one.metrics, "fault.host_crash"), 0);
  EXPECT_GE(one.resubmits, 1);  // the crash really failed the first attempt

  for (int workers : {2, 4, 8}) {
    const GoldenRun w = runGoldenEpWithFaults(workers);
    EXPECT_EQ(one.metrics, w.metrics) << "metrics diverged at " << workers << " workers";
    EXPECT_EQ(one.spans, w.spans) << "span tree diverged at " << workers << " workers";
    EXPECT_EQ(one.trace, w.trace) << "trace bus diverged at " << workers << " workers";
    EXPECT_EQ(one.profile, w.profile) << "profile diverged at " << workers << " workers";
    EXPECT_EQ(one.report, w.report) << "fault report diverged at " << workers << " workers";
    EXPECT_EQ(one.timeline, w.timeline) << "timeline diverged at " << workers << " workers";
    EXPECT_DOUBLE_EQ(one.virtual_seconds, w.virtual_seconds);
    EXPECT_EQ(one.resubmits, w.resubmits);
  }
}

// The golden timeline really carries the interesting series (not just
// headers): per-link utilization, CPU occupancy, and kernel rates all
// sampled during the faulted EP run.
TEST(ParallelGolden, TimelineCoversNetVosAndKernelSeries) {
  const GoldenRun run = runGoldenEpWithFaults(2);
  EXPECT_EQ(run.timeline.rfind("series,bucket_start_ns,bucket_end_ns,samples,min,max,mean,last",
                               0),
            0u);
  EXPECT_NE(run.timeline.find("net.packet.link_util.eth0,"), std::string::npos);
  EXPECT_NE(run.timeline.find("vos.cpu.util.alpha0,"), std::string::npos);
  EXPECT_NE(run.timeline.find("vos.runq.alpha0,"), std::string::npos);
  EXPECT_NE(run.timeline.find("sim.events_per_s,"), std::string::npos);
  EXPECT_NE(run.timeline.find("sim.pending_events,"), std::string::npos);
}

// ------------------------------------ time-resolved telemetry (DESIGN §10) --

namespace {

mo::TimeSeriesRecorder::Options tinyRecorder(std::size_t capacity, std::int64_t width_ns,
                                             std::size_t max_series = 64) {
  mo::TimeSeriesRecorder::Options o;
  o.capacity = capacity;
  o.base_width_ns = width_ns;
  o.max_series = max_series;
  return o;
}

/// Restores the calling thread's obs lane on scope exit — lane state is
/// thread-local and would otherwise leak into later tests.
struct LaneGuard {
  ~LaneGuard() { mo::setCurrentLane(0); }
};

}  // namespace

TEST(Timeline, BucketsAggregateMinMaxMeanLast) {
  mo::TimeSeriesRecorder rec(tinyRecorder(8, 100));
  rec.add("s", 0, 1.0);
  rec.add("s", 50, 3.0);   // same bucket
  rec.add("s", 120, 2.0);  // next bucket
  const auto* s = rec.find("s");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->origin, 0);
  EXPECT_EQ(s->width, 100);
  ASSERT_EQ(s->buckets.size(), 2u);
  EXPECT_EQ(s->buckets[0].count, 2);
  EXPECT_DOUBLE_EQ(s->buckets[0].min, 1.0);
  EXPECT_DOUBLE_EQ(s->buckets[0].max, 3.0);
  EXPECT_DOUBLE_EQ(s->buckets[0].sum, 4.0);
  EXPECT_DOUBLE_EQ(s->buckets[0].last, 3.0);
  EXPECT_EQ(s->buckets[1].count, 1);
  EXPECT_DOUBLE_EQ(s->buckets[1].last, 2.0);
  EXPECT_EQ(rec.sampleCount(), 3);
  EXPECT_EQ(rec.seriesCount(), 1u);
}

TEST(Timeline, OriginAlignsDownToTheWidthGrid) {
  mo::TimeSeriesRecorder rec(tinyRecorder(8, 100));
  rec.add("s", 250, 1.0);  // first sample anchors origin at 200
  const auto* s = rec.find("s");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->origin, 200);
  EXPECT_EQ(s->buckets[0].count, 1);
}

TEST(Timeline, WideningDoublesWidthAndMergesPairs) {
  mo::TimeSeriesRecorder rec(tinyRecorder(2, 100));
  rec.add("s", 0, 1.0);
  rec.add("s", 100, 2.0);
  rec.add("s", 200, 3.0);  // index 2 >= capacity 2 -> widen once
  const auto* s = rec.find("s");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->width, 200);
  EXPECT_EQ(s->widenings, 1);
  ASSERT_EQ(s->buckets.size(), 2u);
  // Old buckets 0+1 merged into the new [0, 200) window.
  EXPECT_EQ(s->buckets[0].count, 2);
  EXPECT_DOUBLE_EQ(s->buckets[0].min, 1.0);
  EXPECT_DOUBLE_EQ(s->buckets[0].max, 2.0);
  EXPECT_DOUBLE_EQ(s->buckets[0].last, 2.0);
  EXPECT_EQ(s->buckets[1].count, 1);
  EXPECT_DOUBLE_EQ(s->buckets[1].last, 3.0);
}

TEST(Timeline, WideningMatchesAnUnboundedReference) {
  // Oracle check for the downsampling path: after many widenings, every
  // bucket must hold exactly the aggregate an unbounded recorder would
  // compute for the same window at the final resolution.
  mo::TimeSeriesRecorder rec(tinyRecorder(16, 100));
  std::vector<std::pair<std::int64_t, double>> raw;
  for (int i = 0; i < 500; ++i) {
    const std::int64_t t = static_cast<std::int64_t>(i) * 137;
    const double v = static_cast<double>((i * 7919) % 1000) / 10.0;
    rec.add("s", t, v);
    raw.emplace_back(t, v);
  }
  const auto* s = rec.find("s");
  ASSERT_NE(s, nullptr);
  ASSERT_GT(s->widenings, 0);
  ASSERT_LE(s->buckets.size(), 16u);

  std::map<std::int64_t, mo::TimeSeriesRecorder::Bucket> expect;
  for (const auto& [t, v] : raw) {
    const std::int64_t idx = (t - s->origin) / s->width;
    auto& b = expect[idx];
    if (b.count == 0) {
      b.min = b.max = b.sum = v;
    } else {
      b.min = std::min(b.min, v);
      b.max = std::max(b.max, v);
      b.sum += v;
    }
    ++b.count;
    b.last = v;
  }
  for (std::size_t i = 0; i < s->buckets.size(); ++i) {
    const auto& got = s->buckets[i];
    const auto it = expect.find(static_cast<std::int64_t>(i));
    if (it == expect.end()) {
      EXPECT_EQ(got.count, 0) << "bucket " << i;
      continue;
    }
    EXPECT_EQ(got.count, it->second.count) << "bucket " << i;
    EXPECT_DOUBLE_EQ(got.min, it->second.min) << "bucket " << i;
    EXPECT_DOUBLE_EQ(got.max, it->second.max) << "bucket " << i;
    EXPECT_DOUBLE_EQ(got.sum, it->second.sum) << "bucket " << i;
    EXPECT_DOUBLE_EQ(got.last, it->second.last) << "bucket " << i;
  }
}

TEST(Timeline, LaneJournalsCommitInTimeThenLaneOrder) {
  // Worker-lane adds journal and merge at the barrier sorted by (time,
  // lane); the result must be byte-identical to direct adds in that order.
  LaneGuard guard;
  mo::TimeSeriesRecorder laned(tinyRecorder(8, 100));
  laned.configureLanes(3);
  mo::setCurrentLane(2);
  laned.add("s", 200, 2.0);
  laned.add("s", 90, 9.0);
  mo::setCurrentLane(1);
  laned.add("s", 200, 5.0);
  laned.add("s", 100, 1.0);
  mo::setCurrentLane(0);
  laned.commitParallelPhase();

  mo::TimeSeriesRecorder direct(tinyRecorder(8, 100));
  direct.add("s", 90, 9.0);    // t=90 (lane 2)
  direct.add("s", 100, 1.0);   // t=100 (lane 1)
  direct.add("s", 200, 5.0);   // t=200: lane 1 before lane 2
  direct.add("s", 200, 2.0);
  EXPECT_EQ(laned.csv(), direct.csv());
  EXPECT_EQ(laned.sampleCount(), 4);

  // A second commit with empty journals is a no-op.
  laned.commitParallelPhase();
  EXPECT_EQ(laned.sampleCount(), 4);
}

TEST(Timeline, MaxSeriesCapDropsNewSeriesNotSamples) {
  mo::TimeSeriesRecorder rec(tinyRecorder(8, 100, /*max_series=*/2));
  rec.add("a", 0, 1.0);
  rec.add("b", 0, 1.0);
  rec.add("c", 0, 1.0);  // dropped: cap reached
  rec.add("a", 50, 2.0); // existing series still records
  EXPECT_EQ(rec.seriesCount(), 2u);
  EXPECT_EQ(rec.droppedSeries(), 1);
  EXPECT_EQ(rec.sampleCount(), 3);
  EXPECT_EQ(rec.find("c"), nullptr);
}

TEST(Timeline, CsvAndJsonAreByteStable) {
  mo::TimeSeriesRecorder rec(tinyRecorder(8, 100));
  rec.add("z.late", 0, 1.5);
  rec.add("a.early", 250, 0.25);
  rec.add("a.early", 260, 0.75);
  const std::string csv =
      "series,bucket_start_ns,bucket_end_ns,samples,min,max,mean,last\n"
      "a.early,200,300,2,0.25,0.75,0.5,0.75\n"
      "z.late,0,100,1,1.5,1.5,1.5,1.5\n";
  EXPECT_EQ(rec.csv(), csv);
  EXPECT_EQ(rec.csv(), csv);
  const std::string json =
      "{\"series\":["
      "{\"name\":\"a.early\",\"origin_ns\":200,\"width_ns\":100,\"widenings\":0,"
      "\"buckets\":[[200,2,0.25,0.75,0.5,0.75]]},"
      "{\"name\":\"z.late\",\"origin_ns\":0,\"width_ns\":100,\"widenings\":0,"
      "\"buckets\":[[0,1,1.5,1.5,1.5,1.5]]}"
      "]}";
  EXPECT_EQ(rec.json(), json);
}

TEST(Sampler, LevelsAndRatesOverSimulatorTicks) {
  sim::Simulator sim;
  sim.timeline().setBaseWidth(sim::kSecond);
  mo::TelemetrySampler::Options so;
  so.interval_ns = sim::kSecond;
  mo::TelemetrySampler sampler(sim.timeline(), sim::telemetryHost(sim), so);

  double cum = 0;
  double level = 0;
  sampler.addRate("r", [&cum](std::int64_t) { return cum; });
  sampler.addLevel("l", [&level](std::int64_t) { return level; });
  sim.scheduleAt(sim::fromSeconds(0.25), [&] { cum += 2.0; level = 7; });
  sim.scheduleAt(sim::fromSeconds(1.5), [&] { cum += 3.0; level = 9; });
  sim.scheduleAt(sim::fromSeconds(3.0), [] {});

  sampler.start();
  sim.run();
  sampler.finish();

  // Ticks at 0/1/2/3 s; the sampler must not keep the run alive past the
  // last real event.
  EXPECT_EQ(sim.now(), sim::fromSeconds(3.0));
  EXPECT_EQ(sampler.ticks(), 4);

  const auto* r = sim.timeline().find("r");
  ASSERT_NE(r, nullptr);
  // The t=0 baseline only primes the cumulative, so the first rate sample —
  // and the series origin — land at the 1 s tick.
  EXPECT_EQ(r->origin, sim::kSecond);
  ASSERT_EQ(r->buckets.size(), 3u);
  EXPECT_DOUBLE_EQ(r->buckets[0].last, 2.0);  // (2-0)/1s over [0,1]
  EXPECT_DOUBLE_EQ(r->buckets[1].last, 3.0);  // (5-2)/1s over [1,2]
  EXPECT_DOUBLE_EQ(r->buckets[2].last, 0.0);  // idle tail

  const auto* l = sim.timeline().find("l");
  ASSERT_NE(l, nullptr);
  ASSERT_EQ(l->buckets.size(), 4u);
  EXPECT_DOUBLE_EQ(l->buckets[0].last, 0.0);
  EXPECT_DOUBLE_EQ(l->buckets[1].last, 7.0);
  EXPECT_DOUBLE_EQ(l->buckets[2].last, 9.0);
  EXPECT_DOUBLE_EQ(l->buckets[3].last, 9.0);
}

TEST(Sampler, CounterRateAndKernelProbes) {
  sim::Simulator sim;
  sim.timeline().setBaseWidth(100 * sim::kMillisecond);
  mo::TelemetrySampler::Options so;
  so.interval_ns = 100 * sim::kMillisecond;
  mo::TelemetrySampler sampler(sim.timeline(), sim::telemetryHost(sim), so);
  sim::registerKernelProbes(sampler, sim);

  for (int i = 1; i <= 20; ++i) {
    sim.scheduleAt(i * 25 * sim::kMillisecond, [] {});
  }
  sampler.start();
  sim.run();
  sampler.finish();

  const auto* ev = sim.timeline().find("sim.events_per_s");
  ASSERT_NE(ev, nullptr);
  double max_rate = 0;
  for (const auto& b : ev->buckets) max_rate = std::max(max_rate, b.max);
  EXPECT_GT(max_rate, 0.0);  // events really flowed through the rate probe
  EXPECT_NE(sim.timeline().find("sim.pending_events"), nullptr);
  EXPECT_NE(sim.timeline().find("sim.arena_slots"), nullptr);
}

TEST(Sampler, ProbesAfterStartThrowAndFinishIsIdempotent) {
  sim::Simulator sim;
  mo::TelemetrySampler sampler(sim.timeline(), sim::telemetryHost(sim));
  sampler.addLevel("l", [](std::int64_t) { return 1.0; });
  sampler.start();
  EXPECT_THROW(sampler.addLevel("m", [](std::int64_t) { return 2.0; }), mg::UsageError);
  EXPECT_THROW(sampler.start(), mg::UsageError);
  sampler.finish();
  sampler.finish();  // same-timestamp collect is skipped, not double-counted
  EXPECT_EQ(sim.timeline().sampleCount(), 1);
}

TEST(TraceExport, TimelineSeriesBecomeCounterTracks) {
  mo::SpanRecorder spans;
  std::int64_t now = 0;
  spans.setTimeSource([&now] { return now; });
  spans.setEnabled(true);
  const auto id = spans.begin("layer", "op", "track");
  now = 1000;
  spans.end(id);

  mo::TimeSeriesRecorder rec(tinyRecorder(8, 1000));
  rec.add("net.link_util.eth0", 0, 0.5);
  rec.add("net.link_util.eth0", 1500, 0.75);

  const std::string with = mo::chromeTraceJson(spans, &rec);
  EXPECT_NE(with.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(with.find("\"name\":\"net.link_util.eth0\""), std::string::npos);
  EXPECT_NE(with.find("\"args\":{\"value\":0.5}"), std::string::npos);
  EXPECT_NE(with.find("\"args\":{\"value\":0.75}"), std::string::npos);
  // Without a timeline the export is unchanged legacy output.
  EXPECT_EQ(mo::chromeTraceJson(spans).find("\"ph\":\"C\""), std::string::npos);
}

// ------------------------------------------------- live progress monitor --

TEST(Progress, PulseTracksLaneClocksAndCommits) {
  mo::RunPulse pulse;
  EXPECT_FALSE(pulse.enabled());
  pulse.enable(true);
  pulse.configureLanes(3);
  pulse.beatLane(0, 1000, 5);
  pulse.beatLane(2, 3000, 7);
  pulse.beatLane(1, 2000, 0);
  EXPECT_EQ(pulse.commits(), 3u);
  EXPECT_EQ(pulse.simNow(), 3000);
  EXPECT_EQ(pulse.laneNow(1), 2000);
  EXPECT_EQ(pulse.lanePending(2), 7);
  pulse.noteBarrier();
  EXPECT_EQ(pulse.epochs(), 1u);
  pulse.beatLane(-1, 9, 9);  // out-of-range lanes are ignored, not UB
  pulse.beatLane(mo::RunPulse::kMaxLanes, 9, 9);
  EXPECT_EQ(pulse.commits(), 3u);
}

TEST(Progress, MonitorHeartbeatsToSinkAndCountsThem) {
  mo::RunPulse pulse;
  pulse.enable(true);
  pulse.configureLanes(1);
  pulse.beatLane(0, 2'500'000'000, 3);

  std::ostringstream sink;
  mo::ProgressOptions popts;
  popts.interval_s = 0.02;
  popts.stall_s = 3600;  // watchdog out of the way
  popts.sink = &sink;
  popts.label = "t-progress";
  popts.fraction = [] { return 0.5; };
  mo::ProgressMonitor monitor(pulse, popts);
  monitor.start();
  for (int i = 0; i < 100 && monitor.heartbeats() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  monitor.stop();

  EXPECT_GE(monitor.heartbeats(), 2);
  const std::string out = sink.str();
  EXPECT_NE(out.find("t-progress: sim 2.500s"), std::string::npos) << out;
  EXPECT_NE(out.find("pending 3"), std::string::npos) << out;
  EXPECT_NE(out.find("eta"), std::string::npos) << out;
}

TEST(Progress, StallWatchdogDumpsLaneStateOnce) {
  mo::RunPulse pulse;
  pulse.enable(true);
  pulse.configureLanes(2);
  pulse.beatLane(0, 1'000'000'000, 4);
  pulse.beatLane(1, 2'000'000'000, 6);

  std::ostringstream sink;
  mo::ProgressOptions popts;
  popts.interval_s = 0.01;
  popts.stall_s = 0.03;  // no commits will arrive: stall fires fast
  popts.sink = &sink;
  mo::ProgressMonitor monitor(pulse, popts);
  monitor.start();
  for (int i = 0; i < 100 && monitor.stallDumps() < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  monitor.stop();

  EXPECT_GE(monitor.stallDumps(), 1);
  // One dump per quiet episode, not one per poll while quiet.
  EXPECT_LE(monitor.stallDumps(), 1 + 1);
  const std::string out = sink.str();
  EXPECT_NE(out.find("STALL"), std::string::npos) << out;
  EXPECT_NE(out.find("lane 0"), std::string::npos) << out;
  EXPECT_NE(out.find("lane 1"), std::string::npos) << out;
}
