// Unit tests for the util module: strings, units, rng, stats, config, table.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "util/config.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/units.h"

namespace mu = mg::util;

// ---------------------------------------------------------------- strings --

TEST(Strings, TrimRemovesSurroundingWhitespace) {
  EXPECT_EQ(mu::trim("  hello \t\n"), "hello");
  EXPECT_EQ(mu::trim(""), "");
  EXPECT_EQ(mu::trim("   "), "");
  EXPECT_EQ(mu::trim("a"), "a");
}

TEST(Strings, SplitPreservesEmptyFields) {
  EXPECT_EQ(mu::split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(mu::split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(mu::split("x", ','), (std::vector<std::string>{"x"}));
  EXPECT_EQ(mu::split("a,b,", ','), (std::vector<std::string>{"a", "b", ""}));
}

TEST(Strings, SplitTrimTrimsEachField) {
  EXPECT_EQ(mu::splitTrim(" a , b ,c ", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(Strings, SplitWhitespaceSkipsRuns) {
  EXPECT_EQ(mu::splitWhitespace("  a \t b\nc  "), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(mu::splitWhitespace("   ").empty());
}

TEST(Strings, CaseHelpers) {
  EXPECT_EQ(mu::toLower("HeLLo"), "hello");
  EXPECT_TRUE(mu::iequals("MBps", "mbps"));
  EXPECT_FALSE(mu::iequals("abc", "abcd"));
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(mu::startsWith("vm.ucsd.edu", "vm."));
  EXPECT_FALSE(mu::startsWith("vm", "vm."));
  EXPECT_TRUE(mu::endsWith("vm.ucsd.edu", ".edu"));
  EXPECT_FALSE(mu::endsWith("edu", ".edu"));
}

TEST(Strings, Join) {
  EXPECT_EQ(mu::join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(mu::join({}, ","), "");
}

TEST(Strings, GlobMatchStar) {
  EXPECT_TRUE(mu::globMatch("vm*", "vm0.ucsd.edu"));
  EXPECT_TRUE(mu::globMatch("*.ucsd.edu", "vm0.ucsd.edu"));
  EXPECT_TRUE(mu::globMatch("vm*.ucsd.*", "vm0.ucsd.edu"));
  EXPECT_FALSE(mu::globMatch("vm*", "host.ucsd.edu"));
  EXPECT_TRUE(mu::globMatch("*", ""));
  EXPECT_TRUE(mu::globMatch("exact", "exact"));
  EXPECT_FALSE(mu::globMatch("exact", "exact2"));
}

TEST(Strings, Format) {
  EXPECT_EQ(mu::format("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(mu::format("%s", ""), "");
}

// ------------------------------------------------------------------ units --

TEST(Units, ParseBandwidth) {
  EXPECT_DOUBLE_EQ(mu::parseBandwidth("100Mbps"), 100e6);
  EXPECT_DOUBLE_EQ(mu::parseBandwidth("622Mb/s"), 622e6);
  EXPECT_DOUBLE_EQ(mu::parseBandwidth("1.2Gbps"), 1.2e9);
  EXPECT_DOUBLE_EQ(mu::parseBandwidth("9600bps"), 9600);
  EXPECT_DOUBLE_EQ(mu::parseBandwidth("10 Mbps"), 10e6);
  EXPECT_DOUBLE_EQ(mu::parseBandwidth("56kbps"), 56e3);
}

TEST(Units, ParseBandwidthErrors) {
  EXPECT_THROW(mu::parseBandwidth(""), mg::ParseError);
  EXPECT_THROW(mu::parseBandwidth("fast"), mg::ParseError);
  EXPECT_THROW(mu::parseBandwidth("100Xbps"), mg::ParseError);
}

TEST(Units, ParseTime) {
  EXPECT_DOUBLE_EQ(mu::parseTime("50ms"), 0.050);
  EXPECT_DOUBLE_EQ(mu::parseTime("10us"), 10e-6);
  EXPECT_DOUBLE_EQ(mu::parseTime("1.5s"), 1.5);
  EXPECT_DOUBLE_EQ(mu::parseTime("200ns"), 200e-9);
  EXPECT_DOUBLE_EQ(mu::parseTime("2min"), 120.0);
  EXPECT_DOUBLE_EQ(mu::parseTime("42"), 42.0);
}

TEST(Units, ParseSizeBinary) {
  EXPECT_EQ(mu::parseSize("100MBytes"), 100ll * 1024 * 1024);
  EXPECT_EQ(mu::parseSize("1GB"), 1024ll * 1024 * 1024);
  EXPECT_EQ(mu::parseSize("64KB"), 64ll * 1024);
  EXPECT_EQ(mu::parseSize("512B"), 512);
  EXPECT_EQ(mu::parseSize("1MiB"), 1024ll * 1024);
  EXPECT_EQ(mu::parseSize("3"), 3);
}

TEST(Units, ParseComputeRate) {
  EXPECT_DOUBLE_EQ(mu::parseComputeRate("533MHz"), 533e6);
  EXPECT_DOUBLE_EQ(mu::parseComputeRate("200MIPS"), 200e6);
  EXPECT_DOUBLE_EQ(mu::parseComputeRate("150Mops"), 150e6);
  EXPECT_DOUBLE_EQ(mu::parseComputeRate("1.5Gops"), 1.5e9);
  EXPECT_DOUBLE_EQ(mu::parseComputeRate("10"), 10.0);
}

TEST(Units, FormatRoundTripReadable) {
  EXPECT_EQ(mu::formatBandwidth(100e6), "100Mbps");
  EXPECT_EQ(mu::formatTime(0.05), "50ms");
  EXPECT_EQ(mu::formatSize(1024), "1KB");
}

// -------------------------------------------------------------------- rng --

TEST(Rng, DeterministicForSameSeed) {
  mu::Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  mu::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  mu::Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  mu::Rng r(11);
  mu::RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(r.uniform());
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
}

TEST(Rng, BelowStaysInRange) {
  mu::Rng r(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    auto v = r.below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues reached
}

TEST(Rng, NormalMoments) {
  mu::Rng r(17);
  mu::RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(r.normal(10.0, 2.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  mu::Rng r(19);
  mu::RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(r.exponential(4.0));
  EXPECT_NEAR(s.mean(), 0.25, 0.01);
}

namespace {

/// Empirical q-quantile of a sample (sorted copy; fine at test sizes).
double sampleQuantile(std::vector<double> xs, double q) {
  std::sort(xs.begin(), xs.end());
  const auto idx = static_cast<std::size_t>(q * static_cast<double>(xs.size() - 1));
  return xs[idx];
}

}  // namespace

TEST(Rng, ExponentialTailQuantile) {
  mu::Rng r(23);
  std::vector<double> xs(100000);
  for (double& x : xs) x = r.exponential(2.0);
  // Closed form: Q(q) = -ln(1-q)/rate.
  EXPECT_NEAR(sampleQuantile(xs, 0.99), -std::log(0.01) / 2.0, 0.1);
}

TEST(Rng, LognormalMeanAndTail) {
  mu::Rng r(29);
  const double mu_p = 1.0, sigma = 0.5;
  mu::RunningStats s;
  std::vector<double> xs(200000);
  for (double& x : xs) {
    x = r.lognormal(mu_p, sigma);
    EXPECT_GT(x, 0.0);
    s.add(x);
  }
  // Closed form: mean = exp(mu + sigma^2/2), Q(q) = exp(mu + sigma z_q).
  EXPECT_NEAR(s.mean(), std::exp(mu_p + sigma * sigma / 2), 0.05);
  const double z95 = 1.6448536269514722;
  EXPECT_NEAR(sampleQuantile(xs, 0.95), std::exp(mu_p + sigma * z95), 0.15);
}

TEST(Rng, ParetoMeanAndTail) {
  mu::Rng r(31);
  const double xm = 1.0, alpha = 3.0;
  mu::RunningStats s;
  std::vector<double> xs(200000);
  for (double& x : xs) {
    x = r.pareto(xm, alpha);
    EXPECT_GE(x, xm);  // support is [xm, inf)
    s.add(x);
  }
  // Closed form (alpha > 1): mean = alpha xm / (alpha - 1);
  // Q(q) = xm (1-q)^(-1/alpha).
  EXPECT_NEAR(s.mean(), alpha * xm / (alpha - 1), 0.03);
  EXPECT_NEAR(sampleQuantile(xs, 0.95), xm * std::pow(0.05, -1.0 / alpha), 0.1);
}

TEST(Rng, SplitStreamsIndependentAndDeterministic) {
  mu::Rng a(42);
  mu::Rng c1 = a.split();
  mu::Rng a2(42);
  mu::Rng c2 = a2.split();
  for (int i = 0; i < 32; ++i) EXPECT_EQ(c1.next(), c2.next());
}

TEST(NpbRandom, MatchesKnownFirstValueProperties) {
  // The NPB generator with the standard seed produces values in (0,1) and is
  // exactly reproducible.
  mu::NpbRandom r;
  double first = r.next();
  EXPECT_GT(first, 0.0);
  EXPECT_LT(first, 1.0);
  mu::NpbRandom r2;
  EXPECT_DOUBLE_EQ(r2.next(), first);
}

TEST(NpbRandom, JumpMatchesSequentialAdvance) {
  mu::NpbRandom seq;
  for (int i = 0; i < 1000; ++i) seq.next();
  mu::NpbRandom jmp;
  jmp.jump(mu::NpbRandom::kDefaultSeed, 1000);
  EXPECT_DOUBLE_EQ(jmp.state(), seq.state());
  EXPECT_DOUBLE_EQ(jmp.next(), seq.next());
}

TEST(NpbRandom, JumpZeroIsSeed) {
  mu::NpbRandom r;
  r.jump(mu::NpbRandom::kDefaultSeed, 0);
  EXPECT_DOUBLE_EQ(r.state(), mu::NpbRandom::kDefaultSeed);
}

// ------------------------------------------------------------------ stats --

TEST(Stats, RunningStatsBasics) {
  mu::RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Stats, RunningStatsEmpty) {
  mu::RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Stats, HistogramBinsAndClamping) {
  mu::Histogram h(0.0, 10.0, 10);
  h.add(0.5);    // bin 0
  h.add(9.5);    // bin 9
  h.add(-5.0);   // clamped to bin 0
  h.add(100.0);  // clamped to bin 9
  h.add(5.0);    // bin 5
  EXPECT_EQ(h.count(0), 2);
  EXPECT_EQ(h.count(9), 2);
  EXPECT_EQ(h.count(5), 1);
  EXPECT_EQ(h.total(), 5);
  EXPECT_DOUBLE_EQ(h.frequency(5), 0.2);
  EXPECT_DOUBLE_EQ(h.binCenter(0), 0.5);
}

TEST(Stats, HistogramInvalidArgsThrow) {
  EXPECT_THROW(mu::Histogram(1.0, 0.0, 10), mg::UsageError);
  EXPECT_THROW(mu::Histogram(0.0, 1.0, 0), mg::UsageError);
}

TEST(Stats, HistogramDegenerateRangeIsLegal) {
  // lo == hi happens naturally when every observation is identical (e.g. a
  // profiler bucket whose spans all have the same duration).
  mu::Histogram h(5.0, 5.0, 8);
  h.add(5.0);
  h.add(5.0);
  EXPECT_EQ(h.total(), 2);
  EXPECT_EQ(h.count(0), 2);
  EXPECT_DOUBLE_EQ(h.binCenter(0), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 5.0);
}

TEST(Stats, HistogramCountAndSum) {
  mu::Histogram h(0.0, 10.0, 10);
  for (double v : {1.0, 2.0, 3.0, 4.0}) h.add(v);
  EXPECT_EQ(h.count(), 4);
  EXPECT_DOUBLE_EQ(h.sum(), 10.0);
}

TEST(Stats, HistogramMergeAddsCountsSumAndTotal) {
  mu::Histogram a(0.0, 10.0, 10);
  mu::Histogram b(0.0, 10.0, 10);
  for (double v : {0.5, 5.0, 9.5}) a.add(v);
  for (double v : {0.5, 2.5, 100.0}) b.add(v);  // 100 clamps to the top bin
  a.merge(b);
  EXPECT_EQ(a.total(), 6);
  EXPECT_EQ(a.count(0), 2);
  EXPECT_EQ(a.count(2), 1);
  EXPECT_EQ(a.count(5), 1);
  EXPECT_EQ(a.count(9), 2);
  EXPECT_DOUBLE_EQ(a.sum(), 0.5 + 5.0 + 9.5 + 0.5 + 2.5 + 100.0);
  // b is untouched.
  EXPECT_EQ(b.total(), 3);
}

TEST(Stats, HistogramMergeEqualsInterleavedAdds) {
  // merge(a, b) must be exactly add-order-independent: the merged histogram
  // matches one that saw every sample directly.
  mu::Histogram a(0.0, 1.0, 16);
  mu::Histogram b(0.0, 1.0, 16);
  mu::Histogram direct(0.0, 1.0, 16);
  for (int i = 0; i < 100; ++i) {
    const double v = (i * 37 % 101) / 101.0;
    ((i % 2 == 0) ? a : b).add(v);
    direct.add(v);
  }
  a.merge(b);
  ASSERT_EQ(a.total(), direct.total());
  for (int bin = 0; bin < 16; ++bin) EXPECT_EQ(a.count(bin), direct.count(bin));
  EXPECT_DOUBLE_EQ(a.quantile(0.5), direct.quantile(0.5));
}

TEST(Stats, HistogramMergeMismatchedShapeThrows) {
  mu::Histogram a(0.0, 10.0, 10);
  EXPECT_THROW(a.merge(mu::Histogram(0.0, 10.0, 20)), mg::UsageError);
  EXPECT_THROW(a.merge(mu::Histogram(0.0, 5.0, 10)), mg::UsageError);
  EXPECT_THROW(a.merge(mu::Histogram(1.0, 10.0, 10)), mg::UsageError);
  // Identical shape still merges after the failed attempts.
  mu::Histogram ok(0.0, 10.0, 10);
  ok.add(3.0);
  a.merge(ok);
  EXPECT_EQ(a.total(), 1);
}

TEST(Stats, HistogramQuantile) {
  // 1000 uniform samples over [0, 100): quantiles should land within one
  // bin width (1.0) of the exact answer.
  mu::Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 1000; ++i) h.add((i % 100) + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.0);
  EXPECT_NEAR(h.quantile(0.95), 95.0, 1.0);
  EXPECT_NEAR(h.quantile(0.99), 99.0, 1.0);
  // Extremes pin to the edges of the populated range.
  EXPECT_NEAR(h.quantile(0.0), 0.0, 1.0);
  EXPECT_NEAR(h.quantile(1.0), 100.0, 1.0);
  EXPECT_THROW(h.quantile(-0.1), mg::UsageError);
  EXPECT_THROW(h.quantile(1.1), mg::UsageError);
}

TEST(Stats, HistogramQuantileEmpty) {
  mu::Histogram h(0.0, 10.0, 10);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // lo() for an empty histogram
}

TEST(Stats, SampleTraceZeroOrderHold) {
  mu::Trace t{{0.0, 1.0}, {1.0, 2.0}, {2.0, 3.0}};
  EXPECT_DOUBLE_EQ(mu::sampleTrace(t, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(mu::sampleTrace(t, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(mu::sampleTrace(t, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(mu::sampleTrace(t, 1.99), 2.0);
  EXPECT_DOUBLE_EQ(mu::sampleTrace(t, 10.0), 3.0);
}

TEST(Stats, RmsSkewZeroForIdenticalTraces) {
  mu::Trace t;
  for (int i = 0; i <= 20; ++i) t.push_back({i * 0.5, std::sin(i * 0.3)});
  EXPECT_NEAR(mu::rmsPercentSkew(t, t), 0.0, 1e-9);
}

TEST(Stats, RmsSkewDetectsOffset) {
  mu::Trace a, b;
  for (int i = 0; i <= 100; ++i) {
    a.push_back({i * 1.0, 10.0 + (i % 5)});
    b.push_back({i * 1.0, 10.4 + (i % 5)});  // constant +0.4 on range 4
  }
  double skew = mu::rmsPercentSkew(a, b);
  EXPECT_NEAR(skew, 10.0, 0.5);  // 0.4/4.0 = 10% of range
}

TEST(Stats, RmsSkewTimeDilationInvariant) {
  // The metric normalizes both traces to their own duration, so a uniformly
  // slowed run with identical shape has ~zero skew — exactly the property
  // the paper's Fig 17 comparison relies on (1s vs 25s sampling).
  mu::Trace a, b;
  for (int i = 0; i <= 100; ++i) {
    double v = (i * 7) % 13;
    a.push_back({i * 1.0, v});
    b.push_back({i * 25.0, v});
  }
  EXPECT_NEAR(mu::rmsPercentSkew(a, b), 0.0, 1e-9);
}

TEST(Stats, PercentError) {
  EXPECT_DOUBLE_EQ(mu::percentError(100.0, 104.0), 4.0);
  EXPECT_DOUBLE_EQ(mu::percentError(100.0, 97.0), -3.0);
  EXPECT_DOUBLE_EQ(mu::percentError(0.0, 0.0), 0.0);
}

TEST(Stats, RmsSkewSingleSampleTraces) {
  // A one-point trace has zero duration and zero value range; the metric
  // falls back to |value| for normalization instead of dividing by zero.
  mu::Trace one{{0.0, 10.0}};
  EXPECT_NEAR(mu::rmsPercentSkew(one, one), 0.0, 1e-12);
  mu::Trace other{{5.0, 12.0}};
  EXPECT_NEAR(mu::rmsPercentSkew(one, other), 20.0, 1e-9);  // 2/10 of |ref|
  // All-zero single sample normalizes by 1.0.
  mu::Trace zero{{0.0, 0.0}};
  EXPECT_NEAR(mu::rmsPercentSkew(zero, other), 1200.0, 1e-9);
}

TEST(Stats, HistogramClampsAtExactBounds) {
  mu::Histogram h(0.0, 10.0, 10);
  h.add(0.0);   // exactly lo: first bin
  h.add(10.0);  // exactly hi: would be bin 10, clamped into the last bin
  EXPECT_EQ(h.count(0), 1);
  EXPECT_EQ(h.count(9), 1);
  EXPECT_EQ(h.total(), 2);
}

TEST(Stats, RunningStatsVarianceNeedsTwoSamples) {
  mu::RunningStats s;
  s.add(42.0);
  EXPECT_EQ(s.count(), 1);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);  // n-1 denominator undefined at n=1
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  s.add(44.0);
  EXPECT_DOUBLE_EQ(s.variance(), 2.0);
}

// ----------------------------------------------------------------- config --

TEST(Config, ParsesTypedSections) {
  auto cfg = mu::Config::parse(R"(
# virtual grid
[host vm0]
ip = 1.11.11.1
cpu = 533MHz      ; like the Alpha cluster
memory = 1GB

[link lan0]
bandwidth = 100Mbps
latency = 0.1ms
)");
  ASSERT_EQ(cfg.sections().size(), 2u);
  const auto& host = cfg.section("host", "vm0");
  EXPECT_EQ(host.getString("ip"), "1.11.11.1");
  EXPECT_DOUBLE_EQ(host.getComputeRate("cpu"), 533e6);
  EXPECT_EQ(host.getSize("memory"), 1024ll * 1024 * 1024);
  const auto& link = cfg.section("link", "lan0");
  EXPECT_DOUBLE_EQ(link.getBandwidth("bandwidth"), 100e6);
  EXPECT_DOUBLE_EQ(link.getTime("latency"), 0.1e-3);
}

TEST(Config, KeysAreCaseInsensitive) {
  auto cfg = mu::Config::parse("[host h]\nCPU = 10\n");
  EXPECT_EQ(cfg.section("host", "h").getInt("cpu"), 10);
}

TEST(Config, OptionalAccessorsFallBack) {
  auto cfg = mu::Config::parse("[host h]\na = 1\n");
  const auto& s = cfg.section("host", "h");
  EXPECT_EQ(s.getInt("a", 9), 1);
  EXPECT_EQ(s.getInt("zz", 9), 9);
  EXPECT_EQ(s.getString("zz", "d"), "d");
  EXPECT_TRUE(s.getBool("zz", true));
}

TEST(Config, DuplicateKeyThrows) {
  EXPECT_THROW(mu::Config::parse("[a x]\nk=1\nk=2\n"), mg::ConfigError);
}

TEST(Config, DuplicateNamedSectionThrows) {
  EXPECT_THROW(mu::Config::parse("[a x]\nk=1\n[a x]\nj=2\n"), mg::ConfigError);
}

TEST(Config, MalformedLinesThrow) {
  EXPECT_THROW(mu::Config::parse("[unterminated\n"), mg::ParseError);
  EXPECT_THROW(mu::Config::parse("key = before any section\n"), mg::ParseError);
  EXPECT_THROW(mu::Config::parse("[a x]\nno equals sign\n"), mg::ParseError);
  EXPECT_THROW(mu::Config::parse("[a x]\n= novalue\n"), mg::ParseError);
}

TEST(Config, MissingKeyAndBadTypesThrow) {
  auto cfg = mu::Config::parse("[h x]\nn = notanumber\n");
  const auto& s = cfg.section("h", "x");
  EXPECT_THROW(s.getString("absent"), mg::ConfigError);
  EXPECT_THROW(s.getDouble("n"), mg::ConfigError);
  EXPECT_THROW(s.getInt("n"), mg::ConfigError);
  EXPECT_THROW(s.getBool("n"), mg::ConfigError);
}

TEST(Config, SectionsOfTypePreservesOrder) {
  auto cfg = mu::Config::parse("[host a]\nx=1\n[link l]\nx=1\n[host b]\nx=2\n");
  auto hosts = cfg.sectionsOfType("host");
  ASSERT_EQ(hosts.size(), 2u);
  EXPECT_EQ(hosts[0]->name(), "a");
  EXPECT_EQ(hosts[1]->name(), "b");
}

TEST(Config, BoolParsing) {
  auto cfg = mu::Config::parse("[a x]\nt1=yes\nt2=TRUE\nt3=1\nf1=no\nf2=off\n");
  const auto& s = cfg.section("a", "x");
  EXPECT_TRUE(s.getBool("t1"));
  EXPECT_TRUE(s.getBool("t2"));
  EXPECT_TRUE(s.getBool("t3"));
  EXPECT_FALSE(s.getBool("f1"));
  EXPECT_FALSE(s.getBool("f2"));
}

// ------------------------------------------------------------------ table --

TEST(Table, RenderAlignsColumns) {
  mu::Table t({"name", "time"});
  t.row() << "EP" << 12.5;
  t.row() << "BT" << 3;
  std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("12.5"), std::string::npos);
  EXPECT_NE(out.find("EP"), std::string::npos);
  EXPECT_EQ(t.rowCount(), 2u);
}

TEST(Table, CsvOutput) {
  mu::Table t({"a", "b"});
  t.row() << "x,y" << 1;
  std::string csv = t.renderCsv();
  EXPECT_EQ(csv, "a,b\n\"x,y\",1\n");
}

TEST(Table, ArityMismatchThrows) {
  mu::Table t({"a", "b"});
  EXPECT_THROW(t.addRow({"only one"}), mg::UsageError);
}
