// Tests for the grid-economy subsystem: workload synthesis, batch-queue
// policies, broker placement, and the end-to-end event-driven economy.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/microgrid_platform.h"
#include "econ/batch_queue.h"
#include "econ/broker.h"
#include "econ/economy.h"
#include "econ/grid_gen.h"
#include "econ/workload.h"
#include "gis/directory.h"
#include "util/config.h"

#include "test_scenarios.h"

using namespace mg;

// --------------------------------------------------------------- workload --

TEST(Workload, DeterministicForSameSeed) {
  econ::WorkloadSpec spec;
  spec.jobs = 500;
  econ::WorkloadGenerator a(spec, 4), b(spec, 4);
  econ::Job ja, jb;
  while (a.next(ja)) {
    ASSERT_TRUE(b.next(jb));
    EXPECT_EQ(ja.id, jb.id);
    EXPECT_EQ(ja.user, jb.user);
    EXPECT_EQ(ja.submit_s, jb.submit_s);
    EXPECT_EQ(ja.runtime_s, jb.runtime_s);
    EXPECT_EQ(ja.cpus, jb.cpus);
    EXPECT_EQ(ja.deadline_s, jb.deadline_s);
    EXPECT_EQ(ja.budget, jb.budget);
    EXPECT_EQ(ja.input_bytes, jb.input_bytes);
  }
  EXPECT_FALSE(b.next(jb));
}

TEST(Workload, ArrivalsMonotoneAndAttributesSane) {
  econ::WorkloadSpec spec;
  spec.jobs = 2000;
  spec.max_cpus = 16;
  econ::WorkloadGenerator gen(spec, 4);
  econ::Job j;
  double last = 0;
  std::set<std::uint32_t> users;
  while (gen.next(j)) {
    EXPECT_GT(j.submit_s, last);  // strictly increasing arrival clock
    last = j.submit_s;
    EXPECT_GE(j.cpus, 1);
    EXPECT_LE(j.cpus, spec.max_cpus);
    EXPECT_EQ(j.cpus & (j.cpus - 1), 0);  // power of two
    EXPECT_GE(j.runtime_s, 1.0);
    EXPECT_GE(j.est_runtime_s, j.runtime_s);  // user estimates overestimate
    EXPECT_GT(j.deadline_s, j.submit_s);
    EXPECT_GT(j.budget, 0.0);
    if (j.input_bytes > 0) {
      EXPECT_GE(j.data_site, 0);
      EXPECT_LT(j.data_site, 4);
    }
    users.insert(j.user);
  }
  EXPECT_GT(users.size(), 100u);  // many distinct submitting users
}

TEST(Workload, SpecFromConfigAndValidation) {
  const util::Config cfg = util::Config::parse(
      "[workload]\n"
      "jobs = 77\n"
      "seed = 9\n"
      "arrival = pareto\n"
      "rate = 3.5\n"
      "max_cpus = 8\n");
  const econ::WorkloadSpec spec = econ::WorkloadSpec::fromConfig(cfg);
  EXPECT_EQ(spec.jobs, 77);
  EXPECT_EQ(spec.seed, 9u);
  EXPECT_EQ(spec.arrival, econ::ArrivalProcess::Pareto);
  EXPECT_EQ(spec.rate, 3.5);
  EXPECT_EQ(spec.max_cpus, 8);

  econ::WorkloadSpec bad;
  bad.pareto_alpha = 0.9;  // infinite-mean interarrivals
  EXPECT_THROW(bad.validate(), mg::ConfigError);
}

// ------------------------------------------------------------ batch queue --

namespace {

econ::QueuedJob qj(std::int64_t id, int cpus, double est, double submit = 0) {
  return econ::QueuedJob{id, cpus, est, submit};
}

std::vector<std::int64_t> ids(const std::vector<econ::StartedJob>& started) {
  std::vector<std::int64_t> out;
  for (const auto& s : started) out.push_back(s.job.id);
  return out;
}

}  // namespace

TEST(BatchQueue, FcfsBlocksBehindWideHead) {
  econ::BatchQueue::Options opt;
  opt.slots = 4;
  opt.policy = econ::QueuePolicy::Fcfs;
  econ::BatchQueue q(opt);
  q.submit(qj(1, 2, 10), 0);
  EXPECT_EQ(ids(q.dispatch(0)), (std::vector<std::int64_t>{1}));
  q.submit(qj(2, 4, 10), 0);  // cannot fit while 1 runs
  q.submit(qj(3, 1, 1), 0);   // could fit, but FCFS never jumps
  EXPECT_TRUE(q.dispatch(0).empty());
  EXPECT_EQ(q.depth(), 2);
  EXPECT_TRUE(q.finish(1));
  EXPECT_FALSE(q.finish(1));  // already released
  EXPECT_EQ(ids(q.dispatch(10)), (std::vector<std::int64_t>{2}));
}

TEST(BatchQueue, EasyBackfillRespectsShadowReservation) {
  econ::BatchQueue::Options opt;
  opt.slots = 4;
  opt.policy = econ::QueuePolicy::EasyBackfill;
  econ::BatchQueue q(opt);
  q.submit(qj(1, 2, 10), 0);  // runs, ends at t=10 by its estimate
  ASSERT_EQ(ids(q.dispatch(0)), (std::vector<std::int64_t>{1}));
  q.submit(qj(2, 4, 10), 0);  // head: needs all 4 slots, shadow time t=10
  q.submit(qj(3, 2, 5), 0);   // fits now, ends t=5 <= shadow: backfills
  q.submit(qj(4, 2, 20), 0);  // would end t=20 > shadow and no extra: waits
  const auto started = q.dispatch(0);
  ASSERT_EQ(ids(started), (std::vector<std::int64_t>{3}));
  EXPECT_TRUE(started[0].backfilled);
  // Head starts only once both running jobs have released their cores.
  EXPECT_TRUE(q.finish(1));
  EXPECT_TRUE(q.dispatch(10).empty());
  EXPECT_TRUE(q.finish(3));
  EXPECT_EQ(ids(q.dispatch(10)), (std::vector<std::int64_t>{2}));
  EXPECT_TRUE(q.finish(2));
  EXPECT_EQ(ids(q.dispatch(20)), (std::vector<std::int64_t>{4}));
}

TEST(BatchQueue, CancelRemovesQueuedButNotRunning) {
  econ::BatchQueue q({});
  q.submit(qj(1, 8, 10), 0);
  q.dispatch(0);
  q.submit(qj(2, 1, 1), 0);
  EXPECT_TRUE(q.cancel(2));
  EXPECT_FALSE(q.cancel(2));  // gone
  EXPECT_FALSE(q.cancel(1));  // running jobs are not cancellable here
  EXPECT_EQ(q.depth(), 0);
}

TEST(BatchQueue, TimeSharedAdmitsOversubscribed) {
  econ::BatchQueue::Options opt;
  opt.slots = 2;
  opt.policy = econ::QueuePolicy::TimeShared;
  opt.oversubscribe = 2;
  econ::BatchQueue q(opt);
  EXPECT_EQ(q.maxWidth(), 4);
  q.submit(qj(1, 2, 10), 0);
  q.submit(qj(2, 2, 10), 0);  // 4 cores on 2 slots: admitted (stretched)
  q.submit(qj(3, 1, 10), 0);  // past the admission cap: queues
  EXPECT_EQ(ids(q.dispatch(0)), (std::vector<std::int64_t>{1, 2}));
  EXPECT_EQ(q.depth(), 1);
  EXPECT_TRUE(q.finish(1));
  EXPECT_EQ(ids(q.dispatch(5)), (std::vector<std::int64_t>{3}));
}

TEST(BatchQueue, PolicyNamesParse) {
  EXPECT_EQ(econ::parseQueuePolicy("fcfs"), econ::QueuePolicy::Fcfs);
  EXPECT_EQ(econ::parseQueuePolicy("easy"), econ::QueuePolicy::EasyBackfill);
  EXPECT_EQ(econ::parseQueuePolicy("timeshared"), econ::QueuePolicy::TimeShared);
  EXPECT_THROW(econ::parseQueuePolicy("sjf"), mg::ConfigError);
}

// ----------------------------------------------------------------- broker --

namespace {

econ::ClusterView view(const std::string& name, int site, double price, double core_ops) {
  econ::ClusterView v;
  v.name = name;
  v.head_host = name + "-head";
  v.site = site;
  v.slots = 64;
  v.free_slots = 64;
  v.price_per_cpu_s = price;
  v.core_ops = core_ops;
  return v;
}

econ::Job brokeredJob() {
  econ::Job j;
  j.id = 1;
  j.cpus = 1;
  j.runtime_s = 100;  // at the 1e9 reference core
  j.est_runtime_s = 100;
  j.budget = 1e9;
  j.deadline_s = 1e9;
  return j;
}

}  // namespace

TEST(Broker, PoliciesPickDifferentClusters) {
  econ::Broker::Options opt;
  econ::Job job = brokeredJob();
  job.input_bytes = 1 << 20;
  job.data_site = 0;

  // "cheap" is slow but inexpensive; "fast" is 4x quicker at 10x the price.
  for (auto [policy, expect] :
       {std::pair{econ::BrokerPolicy::Cost, "cheap"},
        std::pair{econ::BrokerPolicy::Deadline, "fast"},
        std::pair{econ::BrokerPolicy::Locality, "cheap"}}) {
    opt.policy = policy;
    econ::Broker broker(opt);
    broker.updateView({view("cheap", 0, 0.1, 1e9), view("fast", 1, 1.0, 4e9)});
    const econ::Placement p = broker.place(job, 0);
    ASSERT_TRUE(p.placed) << econ::brokerPolicyName(policy);
    EXPECT_EQ(p.cluster, expect) << econ::brokerPolicyName(policy);
  }
}

TEST(Broker, BudgetInfeasibleJobsRejected) {
  econ::Broker broker({});
  broker.updateView({view("a", 0, 1.0, 1e9)});
  econ::Job job = brokeredJob();
  job.budget = 50;  // cheapest run costs 100
  const econ::Placement p = broker.place(job, 0);
  EXPECT_FALSE(p.placed);
  EXPECT_STREQ(p.reject_reason, "budget");

  econ::Job wide = brokeredJob();
  wide.cpus = 128;  // wider than any cluster
  const econ::Placement q = broker.place(wide, 0);
  EXPECT_FALSE(q.placed);
  EXPECT_STREQ(q.reject_reason, "no_fit");
}

TEST(Broker, GisRecordRoundTripAndTtlExpiry) {
  const gis::Dn base = gis::Dn::parse("ou=MicroGrid, o=Grid");
  gis::Directory dir;
  econ::ClusterView a = view("alpha", 2, 0.25, 2e9);
  a.free_slots = 17;
  a.queue_depth = 3;
  a.backlog_s = 12.5;
  dir.upsert(econ::makeQueueRecord(base, a));
  gis::Record dying = econ::makeQueueRecord(base, view("beta", 0, 1.0, 1e9));
  dying.set(gis::kAttrExpires, "5.0");
  dir.upsert(std::move(dying));

  econ::Broker broker({});
  broker.refreshFromGis(dir, base, 1.0);  // both records young
  ASSERT_EQ(broker.views().size(), 2u);
  const econ::ClusterView& round = broker.views().at("alpha");
  EXPECT_EQ(round.site, 2);
  EXPECT_EQ(round.slots, 64);
  EXPECT_EQ(round.free_slots, 17);
  EXPECT_EQ(round.queue_depth, 3);
  EXPECT_EQ(round.backlog_s, 12.5);
  EXPECT_EQ(round.price_per_cpu_s, 0.25);
  EXPECT_EQ(round.core_ops, 2e9);

  broker.refreshFromGis(dir, base, 6.0);  // beta's TTL has passed
  EXPECT_EQ(broker.views().size(), 1u);
  EXPECT_EQ(broker.views().count("beta"), 0u);
}

TEST(Broker, NoteScheduledDebitsTheCachedView) {
  econ::Broker broker({});
  broker.updateView({view("a", 0, 1.0, 1e9)});
  broker.noteScheduled("a", 10, 640);
  EXPECT_EQ(broker.views().at("a").free_slots, 54);
  EXPECT_GT(broker.views().at("a").backlog_s, 0);
  broker.noteDown("a");
  EXPECT_FALSE(broker.views().at("a").alive);
  EXPECT_FALSE(broker.place(brokeredJob(), 0).placed);  // dead views never place
}

// ------------------------------------------------------------- end-to-end --
// The small-economy fixture lives in test_scenarios.h, shared with the
// model-checking and determinism suites.

using mgtest::runEconomy;
using mgtest::smallGrid;
using mgtest::smallWorkload;

TEST(Economy, SmallRunCompletesEveryJobDeterministically) {
  const econ::EconReport a = runEconomy(smallGrid(), smallWorkload(400),
                                        econ::BrokerPolicy::Deadline);
  EXPECT_EQ(a.submitted, 400);
  EXPECT_EQ(a.completed + a.failed + a.rejected_budget + a.rejected_unplaceable, a.submitted);
  EXPECT_GT(a.completed, 0);
  EXPECT_GT(a.makespan_s, 0);
  EXPECT_GE(a.slowdown_p99, a.slowdown_p50);
  EXPECT_GT(a.fairness, 0);
  EXPECT_LE(a.fairness, 1.0 + 1e-9);
  EXPECT_LE(a.budget_spent, a.budget_offered);

  // Byte-identical rerun: same spec, fresh platform, identical report text.
  const econ::EconReport b = runEconomy(smallGrid(), smallWorkload(400),
                                        econ::BrokerPolicy::Deadline);
  EXPECT_EQ(a.render(), b.render());
}

TEST(Economy, TimeSharedClustersStretchButComplete) {
  econ::EconGridSpec g = smallGrid();
  g.timeshared_every = 1;  // every cluster processor-shares
  const econ::EconReport r = runEconomy(g, smallWorkload(200), econ::BrokerPolicy::Deadline);
  EXPECT_EQ(r.completed + r.failed + r.rejected_budget + r.rejected_unplaceable, r.submitted);
  EXPECT_GT(r.completed, 0);
}

TEST(Economy, PolicyChoiceMovesTheDeadlineMissRate) {
  // Load the grid enough that herding onto the cheap cluster hurts.
  econ::WorkloadSpec w = smallWorkload(600);
  w.rate = 0.5;
  const econ::EconReport cost = runEconomy(smallGrid(), w, econ::BrokerPolicy::Cost);
  const econ::EconReport deadline = runEconomy(smallGrid(), w, econ::BrokerPolicy::Deadline);
  EXPECT_EQ(cost.submitted, deadline.submitted);
  // Cost minimization spends less and misses more; deadline the reverse.
  EXPECT_LT(cost.budget_spent, deadline.budget_spent);
  EXPECT_GT(cost.deadline_misses, deadline.deadline_misses);
}

TEST(Economy, ClusterCrashResubmitsInFlightJobs) {
  const econ::EconReport r = runEconomy(smallGrid(), smallWorkload(400),
                                        econ::BrokerPolicy::Deadline,
                                        /*crash_at=*/120, /*restart_at=*/400);
  // Nothing is lost: every submitted job is accounted for, and the crash
  // forced at least one broker-level resubmission.
  EXPECT_EQ(r.completed + r.failed + r.rejected_budget + r.rejected_unplaceable, r.submitted);
  EXPECT_GT(r.resubmits, 0);
}

TEST(Economy, GridGeneratorShapesAndPolicyParse) {
  const econ::EconGrid grid = econ::makeEconGrid(smallGrid());
  ASSERT_EQ(grid.clusters.size(), 2u);
  EXPECT_EQ(grid.clusters[0].slots, 8);
  EXPECT_LT(grid.clusters[0].core_ops, grid.clusters[1].core_ops);  // speed tiers
  EXPECT_LT(grid.clusters[0].price_per_cpu_s, grid.clusters[1].price_per_cpu_s);
  // Per-unit-of-work cost must *rise* with speed or Cost vs Deadline collapse.
  EXPECT_LT(grid.clusters[0].price_per_cpu_s / (grid.clusters[0].core_ops / 1e9),
            grid.clusters[1].price_per_cpu_s / (grid.clusters[1].core_ops / 1e9));

  EXPECT_EQ(econ::parseBrokerPolicy("cost"), econ::BrokerPolicy::Cost);
  EXPECT_EQ(econ::parseBrokerPolicy("deadline"), econ::BrokerPolicy::Deadline);
  EXPECT_EQ(econ::parseBrokerPolicy("locality"), econ::BrokerPolicy::Locality);
  EXPECT_THROW(econ::parseBrokerPolicy("vibes"), mg::ConfigError);
}
