// Integration tests for the core module: virtual-grid config, simulation
// rate, both platforms, GIS-as-a-service, the GRAM path, the launcher, and
// the cross-platform validation properties the paper's experiments rely on.
#include <gtest/gtest.h>

#include <cmath>

#include "core/launcher.h"
#include "core/microgrid_platform.h"
#include "core/reference_platform.h"
#include "core/topologies.h"
#include "gis/schema.h"
#include "gis/service.h"
#include "grid/gram.h"
#include "vmpi/comm.h"

using namespace mg;
using namespace mg::core;

// ------------------------------------------------------ VirtualGridConfig --

TEST(VirtualGrid, BuildAndQuery) {
  VirtualGridConfig cfg;
  cfg.addPhysical("phys0", 533e6);
  cfg.addHost("vm0", "1.1.1.1", 533e6, 1 << 30, "phys0");
  cfg.addHost("vm1", "1.1.1.2", 266e6, 1 << 30, "phys0");
  cfg.addRouter("sw");
  cfg.addLink("l0", "vm0", "sw", 100e6, 1e-3);
  cfg.addLink("l1", "1.1.1.2", "sw", 100e6, 1e-3);  // by IP
  EXPECT_EQ(cfg.topology().nodeCount(), 3);
  EXPECT_EQ(cfg.topology().linkCount(), 2);
  EXPECT_DOUBLE_EQ(cfg.virtualOpsOn("phys0"), 799e6);
  EXPECT_THROW(cfg.addHost("vm2", "1.1.1.3", 1e6, 1, "nope"), mg::ConfigError);
  EXPECT_THROW(cfg.addLink("l2", "vm0", "ghost", 1e6, 0), mg::ConfigError);
}

TEST(VirtualGrid, FromConfigFile) {
  auto cfg = VirtualGridConfig::fromConfig(util::Config::parse(R"(
[physical phys0]
cpu = 533MHz
[host vm0.ucsd.edu]
ip = 1.11.11.1
cpu = 533MHz
memory = 1GB
map = phys0
[host vm1.ucsd.edu]
ip = 1.11.11.2
cpu = 533MHz
memory = 1GB
map = phys0
[node switch0]
kind = router
[link e0]
a = vm0.ucsd.edu
b = switch0
bandwidth = 100Mbps
latency = 0.05ms
[link e1]
a = vm1.ucsd.edu
b = switch0
bandwidth = 100Mbps
latency = 0.05ms
)"));
  EXPECT_EQ(cfg.mapper().hosts().size(), 2u);
  EXPECT_EQ(cfg.topology().nodeCount(), 3);
  EXPECT_DOUBLE_EQ(cfg.physical("phys0").cpu_ops, 533e6);
}

TEST(VirtualGrid, ToGisPublishesFig3Records) {
  auto cfg = topologies::alphaCluster();
  gis::Directory dir;
  const auto base = gis::Dn::parse("ou=MicroGrid, o=Grid");
  cfg.toGis(dir, base, "AlphaCluster");
  auto hosts = gis::virtualHostsForConfig(dir, base, "AlphaCluster");
  EXPECT_EQ(hosts.size(), 4u);
  auto nets = gis::virtualNetworksForConfig(dir, base, "AlphaCluster");
  EXPECT_EQ(nets.size(), 4u);
  // The records carry the paper's virtualization attributes.
  EXPECT_EQ(hosts[0].get("Is_Virtual_Resource"), "Yes");
  EXPECT_EQ(hosts[0].get("Mapped_Physical_Resource"), "alpha0");
}

// ---------------------------------------------------------- SimulationRate --

TEST(SimulationRate, PaperExampleHalfSpeed) {
  // §2.3: physical 100 MIPS, virtual 200 MIPS -> SR = 0.5.
  VirtualGridConfig cfg;
  cfg.addPhysical("p", 100e6);
  cfg.addHost("v", "1.1.1.1", 200e6, 1 << 20, "p");
  auto sr = SimulationRate::compute(cfg);
  EXPECT_DOUBLE_EQ(sr.max_feasible, 0.5);
}

TEST(SimulationRate, MinAcrossMachines) {
  VirtualGridConfig cfg;
  cfg.addPhysical("p0", 100e6);
  cfg.addPhysical("p1", 100e6);
  cfg.addHost("a", "1.1.1.1", 50e6, 1 << 20, "p0");   // SR 2.0
  cfg.addHost("b", "1.1.1.2", 100e6, 1 << 20, "p1");  // SR 1.0
  cfg.addHost("c", "1.1.1.3", 100e6, 1 << 20, "p1");  // shares p1 -> SR 0.5
  auto sr = SimulationRate::compute(cfg);
  ASSERT_EQ(sr.per_machine.size(), 2u);
  EXPECT_DOUBLE_EQ(sr.per_machine[0], 2.0);
  EXPECT_DOUBLE_EQ(sr.per_machine[1], 0.5);
  EXPECT_DOUBLE_EQ(sr.max_feasible, 0.5);
}

TEST(SimulationRate, NoHostsThrows) {
  VirtualGridConfig cfg;
  cfg.addPhysical("p", 100e6);
  EXPECT_THROW(SimulationRate::compute(cfg), mg::ConfigError);
}

// ------------------------------------------------------------- topologies --

TEST(Topologies, PresetsAreWellFormed) {
  auto alpha = topologies::alphaCluster();
  EXPECT_EQ(alpha.mapper().hosts().size(), 4u);
  EXPECT_DOUBLE_EQ(SimulationRate::compute(alpha).max_feasible, 1.0);

  auto hpvm = topologies::hpvm();
  EXPECT_EQ(hpvm.mapper().hosts().size(), 4u);
  EXPECT_NEAR(SimulationRate::compute(hpvm).max_feasible, 533.0 / 300.0, 1e-9);

  auto vbns = topologies::vbns();
  EXPECT_EQ(vbns.mapper().hosts().size(), 4u);
  // Cross-country route exists.
  net::RoutingTable rt(vbns.topology());
  const auto& m = vbns.mapper();
  auto path = rt.path(m.resolve("ucsd0.ucsd.edu").node, m.resolve("uiuc0.uiuc.edu").node);
  EXPECT_GE(path.size(), 5u);  // LAN, uplink, 3 WAN legs, uplink, LAN
}

// ------------------------------------------------------ ReferencePlatform --

TEST(ReferencePlatform, ComputeIsExact) {
  auto cfg = topologies::alphaCluster();
  ReferencePlatform p(cfg);
  double t = -1;
  p.spawnOn("vm0.ucsd.edu", "w", [&](vos::HostContext& ctx) {
    ctx.compute(533e6);  // exactly one second at 533 Mops
    t = ctx.wallTime();
  });
  p.run();
  EXPECT_NEAR(t, 1.0, 1e-9);
}

TEST(ReferencePlatform, SleepAndWallTime) {
  auto cfg = topologies::alphaCluster();
  ReferencePlatform p(cfg);
  double t = -1;
  p.spawnOn("vm1.ucsd.edu", "w", [&](vos::HostContext& ctx) {
    EXPECT_DOUBLE_EQ(ctx.wallTime(), 0.0);
    ctx.sleep(2.5);
    t = ctx.wallTime();
  });
  p.run();
  EXPECT_DOUBLE_EQ(t, 2.5);
}

TEST(ReferencePlatform, SocketEchoAcrossHosts) {
  auto cfg = topologies::alphaCluster();
  ReferencePlatform p(cfg);
  std::string got;
  p.spawnOn("vm0.ucsd.edu", "server", [&](vos::HostContext& ctx) {
    auto listener = ctx.listen(80);
    auto sock = listener->accept();
    char buf[64];
    const size_t n = sock->recv(buf, sizeof buf);
    sock->send(buf, n);
    sock->close();
  });
  p.spawnOn("vm1.ucsd.edu", "client", [&](vos::HostContext& ctx) {
    ctx.sleep(0.001);
    auto sock = ctx.connect("1.11.11.1", 80);  // by virtual IP
    sock->send("ping", 4);
    char buf[8];
    sock->recvExact(buf, 4);
    got.assign(buf, 4);
    EXPECT_EQ(sock->peerHost(), "vm0.ucsd.edu");
  });
  p.run();
  EXPECT_EQ(got, "ping");
}

TEST(ReferencePlatform, ConnectionRefusedWithoutListener) {
  auto cfg = topologies::alphaCluster();
  ReferencePlatform p(cfg);
  bool refused = false;
  p.spawnOn("vm0.ucsd.edu", "client", [&](vos::HostContext& ctx) {
    try {
      ctx.connect("vm1.ucsd.edu", 1234);
    } catch (const mg::Error&) {
      refused = true;
    }
  });
  p.run();
  EXPECT_TRUE(refused);
}

TEST(ReferencePlatform, TransferTimeMatchesFlowModel) {
  auto cfg = topologies::alphaCluster();
  ReferencePlatform p(cfg);
  const std::int64_t kBytes = 1 << 20;
  double duration = 0;
  p.spawnOn("vm0.ucsd.edu", "server", [&](vos::HostContext& ctx) {
    auto listener = ctx.listen(80);
    auto sock = listener->accept();
    std::vector<std::uint8_t> sink(kBytes);
    const double t0 = ctx.wallTime();
    sock->recvExact(sink.data(), sink.size());
    duration = ctx.wallTime() - t0;
  });
  p.spawnOn("vm1.ucsd.edu", "client", [&](vos::HostContext& ctx) {
    ctx.sleep(0.001);
    auto sock = ctx.connect("vm0.ucsd.edu", 80);
    std::vector<std::uint8_t> data(kBytes, 7);
    sock->send(data.data(), data.size());
  });
  p.run();
  // ~1 MB at 100 Mb/s with 1538/1460 framing: ~88 ms.
  EXPECT_NEAR(duration, 0.088, 0.01);
}

TEST(ReferencePlatform, MemoryEnforced) {
  VirtualGridConfig cfg;
  cfg.addPhysical("p", 100e6);
  cfg.addHost("tiny", "1.1.1.1", 100e6, 64 * 1024, "p");
  ReferencePlatform p(cfg);
  bool oom = false;
  std::int64_t allocated = 0;
  p.spawnOn("tiny", "memhog", [&](vos::HostContext& ctx) {
    try {
      for (;;) {
        ctx.allocateMemory(1024);
        allocated += 1024;
      }
    } catch (const vos::OutOfMemoryError&) {
      oom = true;
    }
  });
  p.run();
  EXPECT_TRUE(oom);
  EXPECT_EQ(allocated, 64 * 1024 - vos::MemoryManager::kProcessOverhead);
}

// ------------------------------------------------------ MicroGridPlatform --

TEST(MicroGridPlatform, RateFollowsConfig) {
  auto cfg = topologies::alphaCluster();  // SR = 1
  MicroGridOptions opts;
  opts.utilization = 0.9;
  MicroGridPlatform p(cfg, opts);
  EXPECT_NEAR(p.rate(), 0.9, 1e-12);

  MicroGridOptions slow = opts;
  slow.slowdown = 4.0;
  MicroGridPlatform p4(cfg, slow);
  EXPECT_NEAR(p4.rate(), 0.225, 1e-12);

  MicroGridOptions ovr;
  ovr.rate_override = 0.04;  // the paper's Fig 17 rate
  MicroGridPlatform po(cfg, ovr);
  EXPECT_DOUBLE_EQ(po.rate(), 0.04);
}

TEST(MicroGridPlatform, ComputeMatchesVirtualSpeed) {
  auto cfg = topologies::alphaCluster();
  MicroGridPlatform p(cfg);
  double t = -1;
  p.spawnOn("vm0.ucsd.edu", "w", [&](vos::HostContext& ctx) {
    ctx.compute(533e6);  // one virtual second
    t = ctx.wallTime();
  });
  p.run();
  // Quantum rounding makes this slightly coarse, not wildly off.
  EXPECT_NEAR(t, 1.0, 0.03);
}

TEST(MicroGridPlatform, EmulationCostReflectsRate) {
  auto cfg = topologies::alphaCluster();
  MicroGridOptions opts;
  opts.rate_override = 0.25;
  MicroGridPlatform p(cfg, opts);
  p.spawnOn("vm0.ucsd.edu", "w", [&](vos::HostContext& ctx) { ctx.compute(533e6); });
  p.run();
  // One virtual second at rate 0.25 costs ~4 emulation seconds.
  EXPECT_NEAR(p.emulationNow(), 4.0, 0.2);
  EXPECT_NEAR(p.virtualNow(), 1.0, 0.05);
}

TEST(MicroGridPlatform, SocketEchoThroughPacketNetwork) {
  auto cfg = topologies::alphaCluster();
  MicroGridPlatform p(cfg);
  std::string got;
  p.spawnOn("vm0.ucsd.edu", "server", [&](vos::HostContext& ctx) {
    auto listener = ctx.listen(80);
    auto sock = listener->accept();
    char buf[64];
    const size_t n = sock->recv(buf, sizeof buf);
    sock->send(buf, n);
  });
  p.spawnOn("vm1.ucsd.edu", "client", [&](vos::HostContext& ctx) {
    ctx.sleep(0.001);
    auto sock = ctx.connect("vm0.ucsd.edu", 80);
    sock->send("grid", 4);
    char buf[8];
    sock->recvExact(buf, 4);
    got.assign(buf, 4);
  });
  p.run();
  EXPECT_EQ(got, "grid");
  EXPECT_GT(p.packetNetwork().stats().packets_delivered, 0);
}

TEST(MicroGridPlatform, SocketEchoThroughFlowModel) {
  auto cfg = topologies::alphaCluster();
  MicroGridOptions mopts;
  mopts.netmodel = net::NetModelKind::Flow;
  MicroGridPlatform p(cfg, mopts);
  std::string got;
  p.spawnOn("vm0.ucsd.edu", "server", [&](vos::HostContext& ctx) {
    auto listener = ctx.listen(80);
    auto sock = listener->accept();
    char buf[64];
    const size_t n = sock->recv(buf, sizeof buf);
    sock->send(buf, n);
  });
  p.spawnOn("vm1.ucsd.edu", "client", [&](vos::HostContext& ctx) {
    ctx.sleep(0.001);
    auto sock = ctx.connect("vm0.ucsd.edu", 80);
    sock->send("grid", 4);
    char buf[8];
    sock->recvExact(buf, 4);
    got.assign(buf, 4);
  });
  p.run();
  EXPECT_EQ(got, "grid");
  ASSERT_NE(p.network().flows(), nullptr);
  EXPECT_GT(p.network().flows()->stats().flows_started, 0);
  // No packet machinery exists in pure flow mode.
  EXPECT_THROW(p.packetNetwork(), mg::UsageError);
}

TEST(MicroGridPlatform, HybridEscalatesBySelector) {
  auto cfg = topologies::alphaCluster();
  MicroGridOptions mopts;
  mopts.netmodel = net::NetModelKind::Hybrid;
  mopts.netmodel_detail = {"port:81"};
  MicroGridPlatform p(cfg, mopts);
  auto echoServer = [](vos::HostContext& ctx, std::uint16_t port) {
    auto listener = ctx.listen(port);
    auto sock = listener->accept();
    char buf[64];
    const size_t n = sock->recv(buf, sizeof buf);
    sock->send(buf, n);
  };
  std::string via_flow, via_packet;
  p.spawnOn("vm0.ucsd.edu", "srv80", [&](vos::HostContext& ctx) { echoServer(ctx, 80); });
  p.spawnOn("vm0.ucsd.edu", "srv81", [&](vos::HostContext& ctx) { echoServer(ctx, 81); });
  p.spawnOn("vm1.ucsd.edu", "client", [&](vos::HostContext& ctx) {
    ctx.sleep(0.001);
    auto fluid = ctx.connect("vm0.ucsd.edu", 80);
    fluid->send("flow", 4);
    char buf[8];
    fluid->recvExact(buf, 4);
    via_flow.assign(buf, 4);
    auto detailed = ctx.connect("vm0.ucsd.edu", 81);
    detailed->send("pckt", 4);
    detailed->recvExact(buf, 4);
    via_packet.assign(buf, 4);
  });
  p.run();
  EXPECT_EQ(via_flow, "flow");
  EXPECT_EQ(via_packet, "pckt");
  // Both engines carried their share: port 81 escalated to the packet path,
  // everything else rode the fluid model.
  EXPECT_TRUE(p.network().escalate(0, 1, 81));
  EXPECT_FALSE(p.network().escalate(0, 1, 80));
  ASSERT_NE(p.network().flows(), nullptr);
  EXPECT_GT(p.network().flows()->stats().flows_started, 0);
  EXPECT_GT(p.packetNetwork().stats().packets_delivered, 0);
}

TEST(MicroGridPlatform, FlowModeCrashResetsBlockedPeers) {
  auto cfg = topologies::alphaCluster();
  MicroGridOptions mopts;
  mopts.netmodel = net::NetModelKind::Flow;
  MicroGridPlatform p(cfg, mopts);
  bool reset_seen = false;
  p.spawnOn("vm0.ucsd.edu", "server", [&](vos::HostContext& ctx) {
    auto listener = ctx.listen(80);
    auto sock = listener->accept();
    char buf[16];
    sock->recv(buf, sizeof buf);
    ctx.sleep(100.0);  // never finishes: the host crashes first
  });
  p.spawnOn("vm1.ucsd.edu", "client", [&](vos::HostContext& ctx) {
    auto sock = ctx.connect("vm0.ucsd.edu", 80);
    sock->send("hi", 2);
    char buf[8];
    try {
      sock->recv(buf, sizeof buf);  // dying gasp, not an infinite block
    } catch (const net::ConnectionReset&) {
      reset_seen = true;
    }
  });
  p.simulator().scheduleAfter(sim::fromSeconds(0.5), [&p] { p.crashHost("vm0.ucsd.edu"); });
  p.run();
  EXPECT_TRUE(reset_seen);
}

TEST(MicroGridPlatform, TwoVirtualHostsShareOnePhysical) {
  VirtualGridConfig cfg;
  cfg.addPhysical("p", 533e6);
  cfg.addHost("a", "1.1.1.1", 266e6, 1 << 30, "p");
  cfg.addHost("b", "1.1.1.2", 266e6, 1 << 30, "p");
  cfg.addRouter("sw");
  cfg.addLink("l0", "a", "sw", 100e6, 1e-4);
  cfg.addLink("l1", "b", "sw", 100e6, 1e-4);
  MicroGridPlatform p(cfg);  // rate = 0.9 * 533/532... = 0.9 * 533/532? SR = 533/532e6
  double ta = -1, tb = -1;
  p.spawnOn("a", "wa", [&](vos::HostContext& ctx) {
    ctx.compute(266e6);
    ta = ctx.wallTime();
  });
  p.spawnOn("b", "wb", [&](vos::HostContext& ctx) {
    ctx.compute(266e6);
    tb = ctx.wallTime();
  });
  p.run();
  // Both virtual hosts run one virtual second of work concurrently; the
  // shared physical CPU serves both at the feasible rate.
  EXPECT_NEAR(ta, 1.0, 0.05);
  EXPECT_NEAR(tb, 1.0, 0.05);
}

// The Fig 15 property: emulation rate does not change virtual-time results.
TEST(MicroGridPlatform, VirtualResultsInvariantUnderSlowdown) {
  auto runAt = [](double slowdown) {
    auto cfg = topologies::alphaCluster();
    MicroGridOptions opts;
    opts.slowdown = slowdown;
    MicroGridPlatform p(cfg, opts);
    double t = -1;
    p.spawnOn("vm0.ucsd.edu", "server", [&](vos::HostContext& ctx) {
      auto listener = ctx.listen(80);
      auto sock = listener->accept();
      for (int i = 0; i < 5; ++i) {
        char buf[1024];
        sock->recvExact(buf, sizeof buf);
        // Compute phases span many quanta (as the NPB do); sub-quantum
        // bursts run at full physical speed under the Fig 4 credit rule
        // and are NOT rate-invariant — the effect Fig 11 measures.
        ctx.compute(50e6);
        sock->send(buf, sizeof buf);
      }
    });
    p.spawnOn("vm1.ucsd.edu", "client", [&](vos::HostContext& ctx) {
      ctx.sleep(0.001);
      auto sock = ctx.connect("vm0.ucsd.edu", 80);
      char buf[1024] = {0};
      for (int i = 0; i < 5; ++i) {
        ctx.compute(50e6);
        sock->send(buf, sizeof buf);
        sock->recvExact(buf, sizeof buf);
      }
      t = ctx.wallTime();
    });
    p.run();
    return t;
  };
  const double t1 = runAt(1.0);
  const double t8 = runAt(8.0);
  EXPECT_NEAR(t8 / t1, 1.0, 0.1);
}

// -------------------------------------------------------- GIS as a service --

TEST(GisService, RemoteSearchAddRemove) {
  auto cfg = topologies::alphaCluster();
  ReferencePlatform p(cfg);
  gis::Directory dir;
  cfg.toGis(dir, gis::Dn::parse("ou=MicroGrid, o=Grid"), "AlphaCluster");

  p.spawnOn("vm0.ucsd.edu", "gis-server",
            [&](vos::HostContext& ctx) { gis::serveDirectory(ctx, dir); });

  int found = -1;
  bool removed = false;
  int after_remove = -1;
  p.spawnOn("vm1.ucsd.edu", "client", [&](vos::HostContext& ctx) {
    ctx.sleep(0.01);
    gis::GisClient client(ctx, "vm0.ucsd.edu");
    auto records = client.search("ou=MicroGrid, o=Grid", gis::Scope::Subtree,
                                 "(Is_Virtual_Resource=Yes)");
    found = static_cast<int>(records.size());

    gis::Record extra(gis::Dn::parse("hn=new.ucsd.edu, ou=MicroGrid, o=Grid"));
    extra.add("objectclass", "GridComputeResource");
    extra.add("Is_Virtual_Resource", "Yes");
    client.add(extra);
    removed = client.remove(extra.dn());
    after_remove = static_cast<int>(client
                                        .search("ou=MicroGrid, o=Grid", gis::Scope::Subtree,
                                                "(hn=new.ucsd.edu)")
                                        .size());
    client.close();
  });
  p.run();
  EXPECT_EQ(found, 8);  // 4 hosts + 4 links
  EXPECT_TRUE(removed);
  EXPECT_EQ(after_remove, 0);
}

// -------------------------------------------------------------------- GRAM --

namespace {

grid::ExecutableRegistry makeRegistry() {
  grid::ExecutableRegistry reg;
  reg.add("sleepy", [](grid::JobContext& jc) {
    jc.os.sleep(0.05);
    return 0;
  });
  reg.add("compute", [](grid::JobContext& jc) {
    jc.os.compute(533e5);  // 0.1 s on an Alpha
    return 0;
  });
  reg.add("exit3", [](grid::JobContext&) { return 3; });
  reg.add("crasher", [](grid::JobContext&) -> int { throw std::runtime_error("segfault"); });
  return reg;
}

}  // namespace

TEST(Gram, SubmitWaitDone) {
  auto cfg = topologies::alphaCluster();
  ReferencePlatform p(cfg);
  auto registry = makeRegistry();
  p.spawnOn("vm0.ucsd.edu", "gatekeeper",
            [&](vos::HostContext& ctx) { grid::serveGatekeeper(ctx, registry); });
  grid::JobStatus st;
  p.spawnOn("vm1.ucsd.edu", "client", [&](vos::HostContext& ctx) {
    ctx.sleep(0.01);
    grid::GramClient client(ctx);
    grid::Rsl rsl;
    rsl.set("executable", "sleepy");
    rsl.set("count", "2");
    const std::string contact = client.submit("vm0.ucsd.edu", rsl);
    st = client.wait(contact);
  });
  p.run();
  EXPECT_EQ(st.state, grid::JobState::Done);
  EXPECT_EQ(st.exit_code, 0);
}

TEST(Gram, NonZeroExitPropagates) {
  auto cfg = topologies::alphaCluster();
  ReferencePlatform p(cfg);
  auto registry = makeRegistry();
  p.spawnOn("vm0.ucsd.edu", "gatekeeper",
            [&](vos::HostContext& ctx) { grid::serveGatekeeper(ctx, registry); });
  grid::JobStatus st;
  p.spawnOn("vm1.ucsd.edu", "client", [&](vos::HostContext& ctx) {
    ctx.sleep(0.01);
    grid::GramClient client(ctx);
    grid::Rsl rsl;
    rsl.set("executable", "exit3");
    st = client.wait(client.submit("vm0.ucsd.edu", rsl));
  });
  p.run();
  EXPECT_EQ(st.state, grid::JobState::Done);
  EXPECT_EQ(st.exit_code, 3);
}

TEST(Gram, CrashingJobFails) {
  auto cfg = topologies::alphaCluster();
  ReferencePlatform p(cfg);
  auto registry = makeRegistry();
  p.spawnOn("vm0.ucsd.edu", "gatekeeper",
            [&](vos::HostContext& ctx) { grid::serveGatekeeper(ctx, registry); });
  grid::JobStatus st;
  p.spawnOn("vm1.ucsd.edu", "client", [&](vos::HostContext& ctx) {
    ctx.sleep(0.01);
    grid::GramClient client(ctx);
    grid::Rsl rsl;
    rsl.set("executable", "crasher");
    st = client.wait(client.submit("vm0.ucsd.edu", rsl));
  });
  p.run();
  EXPECT_EQ(st.state, grid::JobState::Failed);
  EXPECT_NE(st.error.find("segfault"), std::string::npos);
}

TEST(Gram, UnknownExecutableFails) {
  auto cfg = topologies::alphaCluster();
  ReferencePlatform p(cfg);
  auto registry = makeRegistry();
  p.spawnOn("vm0.ucsd.edu", "gatekeeper",
            [&](vos::HostContext& ctx) { grid::serveGatekeeper(ctx, registry); });
  grid::JobStatus st;
  p.spawnOn("vm1.ucsd.edu", "client", [&](vos::HostContext& ctx) {
    ctx.sleep(0.01);
    grid::GramClient client(ctx);
    grid::Rsl rsl;
    rsl.set("executable", "ghost");
    st = client.wait(client.submit("vm0.ucsd.edu", rsl));
  });
  p.run();
  EXPECT_EQ(st.state, grid::JobState::Failed);
}

TEST(Gram, AuthenticationRejectsWrongSubject) {
  auto cfg = topologies::alphaCluster();
  ReferencePlatform p(cfg);
  auto registry = makeRegistry();
  grid::GatekeeperOptions opts;
  opts.required_subject = "/O=Grid/CN=alice";
  p.spawnOn("vm0.ucsd.edu", "gatekeeper",
            [&, opts](vos::HostContext& ctx) { grid::serveGatekeeper(ctx, registry, opts); });
  bool rejected = false;
  bool accepted = false;
  p.spawnOn("vm1.ucsd.edu", "client", [&](vos::HostContext& ctx) {
    ctx.sleep(0.01);
    grid::Rsl rsl;
    rsl.set("executable", "sleepy");
    grid::GramClient mallory(ctx, "/O=Grid/CN=mallory");
    try {
      mallory.submit("vm0.ucsd.edu", rsl);
    } catch (const mg::Error&) {
      rejected = true;
    }
    grid::GramClient alice(ctx, "/O=Grid/CN=alice");
    accepted = (alice.wait(alice.submit("vm0.ucsd.edu", rsl)).state == grid::JobState::Done);
  });
  p.run();
  EXPECT_TRUE(rejected);
  EXPECT_TRUE(accepted);
}

TEST(Gram, MaxMemoryEnforced) {
  VirtualGridConfig cfg;
  cfg.addPhysical("p", 533e6);
  cfg.addHost("small", "1.1.1.1", 533e6, 1 << 20, "p");  // 1 MB host
  cfg.addHost("client", "1.1.1.2", 533e6, 1 << 30, "p");
  cfg.addRouter("sw");
  cfg.addLink("l0", "small", "sw", 100e6, 1e-4);
  cfg.addLink("l1", "client", "sw", 100e6, 1e-4);
  ReferencePlatform p(cfg);
  auto registry = makeRegistry();
  p.spawnOn("small", "gatekeeper",
            [&](vos::HostContext& ctx) { grid::serveGatekeeper(ctx, registry); });
  grid::JobStatus st;
  p.spawnOn("client", "client", [&](vos::HostContext& ctx) {
    ctx.sleep(0.01);
    grid::GramClient client(ctx);
    grid::Rsl rsl;
    rsl.set("executable", "sleepy");
    rsl.set("maxMemory", "4MB");  // exceeds the 1 MB host
    st = client.wait(client.submit("small", rsl));
  });
  p.run();
  EXPECT_EQ(st.state, grid::JobState::Failed);
  EXPECT_NE(st.error.find("out of memory"), std::string::npos);
}

TEST(Rsl, ParseAndRoundTrip) {
  auto rsl = grid::Rsl::parse(
      "&(executable=npb.ep)(count=4)(arguments=classA trace)"
      "(maxMemory=100MBytes)(environment=(MG_JOB_SIZE 4)(MG_RANK_BASE 0))");
  EXPECT_EQ(rsl.executable(), "npb.ep");
  EXPECT_EQ(rsl.count(), 4);
  EXPECT_EQ(rsl.arguments(), (std::vector<std::string>{"classA", "trace"}));
  EXPECT_EQ(rsl.environment().at("MG_JOB_SIZE"), "4");
  auto back = grid::Rsl::parse(rsl.str());
  EXPECT_EQ(back.get("maxmemory"), "100MBytes");
  EXPECT_EQ(back.environment().at("MG_RANK_BASE"), "0");
}

TEST(Rsl, MultiRequest) {
  auto multi = grid::Rsl::parseMulti("+&(executable=a)(count=1)&(executable=b)(count=2)");
  ASSERT_EQ(multi.size(), 2u);
  EXPECT_EQ(multi[0].executable(), "a");
  EXPECT_EQ(multi[1].count(), 2);
  EXPECT_EQ(grid::Rsl::parseMulti("&(executable=x)").size(), 1u);
}

TEST(Rsl, MalformedThrows) {
  EXPECT_THROW(grid::Rsl::parse("(executable=x)"), mg::ParseError);
  EXPECT_THROW(grid::Rsl::parse("&(executable=x"), mg::ParseError);
  EXPECT_THROW(grid::Rsl::parse("&(=x)"), mg::ParseError);
  EXPECT_THROW(grid::Rsl::parse("&(environment=(A 1)"), mg::ParseError);
  EXPECT_THROW(grid::Rsl::parseMulti("+"), mg::ParseError);
}

// ---------------------------------------------------------------- Launcher --

namespace {

/// A small vmpi program: ranks allreduce their ranks and verify the sum.
int allreduceJob(grid::JobContext& jc) {
  auto comm = vmpi::Comm::init(jc);
  double v = comm->rank();
  comm->allreduce(&v, 1, vmpi::Op::Sum);
  const int n = comm->size();
  comm->finalize();
  return (v == n * (n - 1) / 2.0) ? 0 : 1;
}

}  // namespace

TEST(Launcher, EndToEndCoallocatedVmpiJob) {
  auto cfg = topologies::alphaCluster();
  ReferencePlatform platform(cfg);
  grid::ExecutableRegistry registry;
  registry.add("allreduce", allreduceJob);
  Launcher launcher(platform, registry);
  launcher.startServices(&cfg, "AlphaCluster");
  auto result = launcher.run("allreduce", "", {{"vm0.ucsd.edu", 1},
                                               {"vm1.ucsd.edu", 1},
                                               {"vm2.ucsd.edu", 1},
                                               {"vm3.ucsd.edu", 1}});
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_GT(result.virtual_seconds, 0.0);
  // The GIS was populated with the published records.
  EXPECT_GT(launcher.directory().size(), 0u);
}

TEST(Launcher, MultipleRanksPerHostThroughGram) {
  auto cfg = topologies::alphaCluster();
  ReferencePlatform platform(cfg);
  grid::ExecutableRegistry registry;
  registry.add("allreduce", allreduceJob);
  Launcher launcher(platform, registry);
  launcher.startServices();
  auto result = launcher.run("allreduce", "", {{"vm0.ucsd.edu", 2}, {"vm1.ucsd.edu", 2}});
  EXPECT_TRUE(result.ok) << result.error;
}

TEST(Launcher, RunsOnMicroGridToo) {
  auto cfg = topologies::alphaCluster();
  MicroGridPlatform platform(cfg);
  grid::ExecutableRegistry registry;
  registry.add("allreduce", allreduceJob);
  Launcher launcher(platform, registry);
  launcher.startServices();
  auto result = launcher.run("allreduce", "", {{"vm0.ucsd.edu", 1},
                                               {"vm1.ucsd.edu", 1},
                                               {"vm2.ucsd.edu", 1},
                                               {"vm3.ucsd.edu", 1}});
  EXPECT_TRUE(result.ok) << result.error;
}

// --------------------------------------------- cross-platform validation --

namespace {

/// A compute+communicate kernel, the validation workhorse: returns the
/// virtual wall time measured by rank 0.
int pingComputeJob(grid::JobContext& jc, double* out_time) {
  auto comm = vmpi::Comm::init(jc);
  comm->barrier();
  const double t0 = comm->wtime();
  std::vector<double> buf(4096);
  for (int iter = 0; iter < 10; ++iter) {
    jc.os.compute(20e6);
    const int peer = comm->rank() ^ 1;
    if (peer < comm->size()) {
      comm->sendRecv(peer, 1, buf.data(), buf.size() * sizeof(double), peer, 1, buf.data(),
                     buf.size() * sizeof(double));
    }
    comm->allreduce(buf.data(), 16, vmpi::Op::Sum);
  }
  comm->barrier();
  if (comm->rank() == 0 && out_time) *out_time = comm->wtime() - t0;
  comm->finalize();
  return 0;
}

double runPingCompute(Platform& platform) {
  grid::ExecutableRegistry registry;
  double measured = 0;
  registry.add("kernel", [&measured](grid::JobContext& jc) {
    return pingComputeJob(jc, &measured);
  });
  Launcher launcher(platform, registry);
  launcher.startServices();
  auto result = launcher.run("kernel", "", {{"vm0.ucsd.edu", 1},
                                            {"vm1.ucsd.edu", 1},
                                            {"vm2.ucsd.edu", 1},
                                            {"vm3.ucsd.edu", 1}});
  EXPECT_TRUE(result.ok) << result.error;
  return measured;
}

}  // namespace

TEST(Validation, MicroGridTracksReferenceWithinTolerance) {
  auto cfg = topologies::alphaCluster();
  ReferencePlatform ref(cfg);
  const double t_ref = runPingCompute(ref);
  MicroGridPlatform mg_platform(cfg);
  const double t_mg = runPingCompute(mg_platform);
  ASSERT_GT(t_ref, 0);
  ASSERT_GT(t_mg, 0);
  // The paper reports 2-4% total-runtime error for NPB Class A; this small
  // kernel synchronizes more often, so allow a wider (but still tight) band.
  EXPECT_NEAR(t_mg / t_ref, 1.0, 0.15) << "ref " << t_ref << " vs mgrid " << t_mg;
}

TEST(Validation, DeterministicAcrossRuns) {
  auto once = [] {
    auto cfg = topologies::alphaCluster();
    MicroGridPlatform platform(cfg);
    return runPingCompute(platform);
  };
  EXPECT_DOUBLE_EQ(once(), once());
}
