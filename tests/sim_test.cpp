// Unit tests for the discrete-event kernel: event ordering, processes,
// conditions, channels, determinism.
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "sim/channel.h"
#include "sim/condition.h"
#include "sim/simulator.h"
#include "sim/time.h"

using namespace mg::sim;

TEST(SimTime, Conversions) {
  EXPECT_EQ(fromSeconds(1.0), kSecond);
  EXPECT_EQ(fromSeconds(0.001), kMillisecond);
  EXPECT_DOUBLE_EQ(toSeconds(kSecond), 1.0);
  EXPECT_EQ(fromSeconds(0.0), 0);
  EXPECT_EQ(fromSeconds(2.5e-9), 3);  // rounds to nearest ns
}

TEST(Simulator, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.scheduleAt(30, [&] { order.push_back(3); });
  sim.scheduleAt(10, [&] { order.push_back(1); });
  sim.scheduleAt(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, EqualTimesRunFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.scheduleAt(10, [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  SimTime seen = -1;
  sim.scheduleAt(100, [&] {
    sim.scheduleAfter(50, [&] { seen = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(seen, 150);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  EventId id = sim.scheduleAt(10, [&] { ran = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, CancelUnknownIsNoop) {
  Simulator sim;
  sim.cancel(9999);  // must not throw
  sim.run();
}

TEST(Simulator, SchedulingInPastThrows) {
  Simulator sim;
  sim.scheduleAt(100, [] {});
  sim.run();
  EXPECT_THROW(sim.scheduleAt(50, [] {}), mg::UsageError);
  EXPECT_THROW(sim.scheduleAfter(-1, [] {}), mg::UsageError);
}

TEST(Simulator, RunUntilStopsAndSetsNow) {
  Simulator sim;
  std::vector<int> ran;
  sim.scheduleAt(10, [&] { ran.push_back(1); });
  sim.scheduleAt(100, [&] { ran.push_back(2); });
  sim.runUntil(50);
  EXPECT_EQ(ran, (std::vector<int>{1}));
  EXPECT_EQ(sim.now(), 50);
  sim.run();
  EXPECT_EQ(ran, (std::vector<int>{1, 2}));
}

TEST(Process, DelayAdvancesTime) {
  Simulator sim;
  std::vector<SimTime> stamps;
  sim.spawn("p", [&] {
    stamps.push_back(sim.now());
    sim.delay(100);
    stamps.push_back(sim.now());
    sim.delay(kSecond);
    stamps.push_back(sim.now());
  });
  sim.run();
  EXPECT_EQ(stamps, (std::vector<SimTime>{0, 100, 100 + kSecond}));
}

TEST(Process, TwoProcessesInterleaveDeterministically) {
  Simulator sim;
  std::vector<std::string> log;
  sim.spawn("a", [&] {
    for (int i = 0; i < 3; ++i) {
      log.push_back("a" + std::to_string(i));
      sim.delay(10);
    }
  });
  sim.spawn("b", [&] {
    sim.delay(5);
    for (int i = 0; i < 3; ++i) {
      log.push_back("b" + std::to_string(i));
      sim.delay(10);
    }
  });
  sim.run();
  EXPECT_EQ(log, (std::vector<std::string>{"a0", "b0", "a1", "b1", "a2", "b2"}));
}

TEST(Process, SuspendAndWake) {
  Simulator sim;
  Process* sleeper = nullptr;
  SimTime woke_at = -1;
  sleeper = &sim.spawn("sleeper", [&] {
    sim.suspend();
    woke_at = sim.now();
  });
  sim.spawn("waker", [&] {
    sim.delay(500);
    sim.wake(*sleeper);
  });
  sim.run();
  EXPECT_EQ(woke_at, 500);
}

TEST(Process, SuspendForTimesOut) {
  Simulator sim;
  bool woken = true;
  sim.spawn("p", [&] { woken = sim.suspendFor(100); });
  sim.run();
  EXPECT_FALSE(woken);
  EXPECT_EQ(sim.now(), 100);
}

TEST(Process, SuspendForWokenBeforeTimeout) {
  Simulator sim;
  Process* p = nullptr;
  bool woken = false;
  SimTime end = -1;
  p = &sim.spawn("p", [&] {
    woken = sim.suspendFor(kSecond);
    end = sim.now();
  });
  sim.spawn("w", [&] {
    sim.delay(10);
    sim.wake(*p);
  });
  sim.run();
  EXPECT_TRUE(woken);
  EXPECT_EQ(end, 10);
  // The cancelled timeout must not stretch the run: final time is the wake.
  EXPECT_EQ(sim.now(), 10);
}

TEST(Process, StaleTimeoutDoesNotFireOnLaterSuspend) {
  Simulator sim;
  Process* p = nullptr;
  std::vector<bool> results;
  p = &sim.spawn("p", [&] {
    results.push_back(sim.suspendFor(100));  // woken at t=10
    results.push_back(sim.suspendFor(1000));  // must time out at 1010, not 100
  });
  sim.spawn("w", [&] {
    sim.delay(10);
    sim.wake(*p);
  });
  sim.run();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0]);
  EXPECT_FALSE(results[1]);
  EXPECT_EQ(sim.now(), 1010);
}

TEST(Process, WakeOnRunningProcessIsNoop) {
  Simulator sim;
  Process* p = nullptr;
  p = &sim.spawn("p", [&] {
    sim.wake(*p);  // self-wake while running: dropped
    sim.delay(10);
  });
  sim.run();
  EXPECT_EQ(sim.now(), 10);
}

TEST(Process, BlockingCallOutsideProcessThrows) {
  Simulator sim;
  EXPECT_THROW(sim.delay(10), mg::UsageError);
  EXPECT_THROW(sim.suspend(), mg::UsageError);
  EXPECT_FALSE(sim.inProcessContext());
}

TEST(Process, SpawnFromWithinProcess) {
  Simulator sim;
  std::vector<std::string> log;
  sim.spawn("parent", [&] {
    sim.delay(10);
    sim.spawn("child", [&] {
      log.push_back("child@" + std::to_string(sim.now()));
    });
    sim.delay(10);
    log.push_back("parent@" + std::to_string(sim.now()));
  });
  sim.run();
  EXPECT_EQ(log, (std::vector<std::string>{"child@10", "parent@20"}));
}

TEST(Process, ShutdownKillsSuspendedDaemons) {
  Simulator sim;
  bool unwound = false;
  sim.spawn("daemon", [&] {
    struct Flag {
      bool* f;
      ~Flag() { *f = true; }
    } flag{&unwound};
    sim.suspend();  // never woken
  });
  sim.run();
  EXPECT_EQ(sim.liveProcessCount(), 1);
  EXPECT_EQ(sim.suspendedProcessNames(), (std::vector<std::string>{"daemon"}));
  sim.shutdown();
  EXPECT_TRUE(unwound);
  EXPECT_EQ(sim.liveProcessCount(), 0);
}

TEST(Process, ExceptionInBodyDoesNotCrashKernel) {
  Simulator sim;
  sim.spawn("thrower", [&] {
    sim.delay(5);
    throw std::runtime_error("app bug");
  });
  SimTime end = sim.run();
  EXPECT_EQ(end, 5);
  EXPECT_EQ(sim.liveProcessCount(), 0);
}

TEST(Condition, NotifyOneWakesFifo) {
  Simulator sim;
  Condition cond(sim);
  std::vector<int> woken;
  for (int i = 0; i < 3; ++i) {
    sim.spawn("w" + std::to_string(i), [&, i] {
      cond.wait();
      woken.push_back(i);
    });
  }
  sim.spawn("notifier", [&] {
    sim.delay(10);
    cond.notifyOne();
    sim.delay(10);
    cond.notifyOne();
    sim.delay(10);
    cond.notifyOne();
  });
  sim.run();
  EXPECT_EQ(woken, (std::vector<int>{0, 1, 2}));
}

TEST(Condition, NotifyAllWakesEveryone) {
  Simulator sim;
  Condition cond(sim);
  int woken = 0;
  for (int i = 0; i < 5; ++i) {
    sim.spawn("w" + std::to_string(i), [&] {
      cond.wait();
      ++woken;
    });
  }
  sim.spawn("notifier", [&] {
    sim.delay(1);
    EXPECT_EQ(cond.waiterCount(), 5u);
    cond.notifyAll();
  });
  sim.run();
  EXPECT_EQ(woken, 5);
  EXPECT_EQ(cond.waiterCount(), 0u);
}

TEST(Condition, WaitForTimeoutRemovesWaiter) {
  Simulator sim;
  Condition cond(sim);
  bool notified = true;
  sim.spawn("p", [&] { notified = cond.waitFor(50); });
  sim.run();
  EXPECT_FALSE(notified);
  EXPECT_EQ(cond.waiterCount(), 0u);
}

TEST(Channel, SendRecvTransfersInOrder) {
  Simulator sim;
  Channel<int> ch(sim);
  std::vector<int> got;
  sim.spawn("consumer", [&] {
    for (int i = 0; i < 3; ++i) got.push_back(ch.recv());
  });
  sim.spawn("producer", [&] {
    for (int i = 1; i <= 3; ++i) {
      sim.delay(10);
      ch.send(i * 11);
    }
  });
  sim.run();
  EXPECT_EQ(got, (std::vector<int>{11, 22, 33}));
}

TEST(Channel, BoundedChannelBlocksSender) {
  Simulator sim;
  Channel<int> ch(sim, 2);
  SimTime third_sent = -1;
  sim.spawn("producer", [&] {
    ch.send(1);
    ch.send(2);
    ch.send(3);  // blocks until consumer drains one
    third_sent = sim.now();
  });
  sim.spawn("consumer", [&] {
    sim.delay(100);
    EXPECT_EQ(ch.recv(), 1);
  });
  sim.run();
  EXPECT_EQ(third_sent, 100);
}

TEST(Channel, TrySendTryRecv) {
  Simulator sim;
  Channel<int> ch(sim, 1);
  sim.spawn("p", [&] {
    EXPECT_FALSE(ch.tryRecv().has_value());
    EXPECT_TRUE(ch.trySend(5));
    EXPECT_FALSE(ch.trySend(6));  // full
    auto v = ch.tryRecv();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 5);
  });
  sim.run();
}

TEST(Channel, RecvForTimesOut) {
  Simulator sim;
  Channel<int> ch(sim);
  std::optional<int> got = 42;
  sim.spawn("p", [&] { got = ch.recvFor(100); });
  sim.run();
  EXPECT_FALSE(got.has_value());
  EXPECT_EQ(sim.now(), 100);
}

TEST(Channel, RecvForGetsValueBeforeTimeout) {
  Simulator sim;
  Channel<int> ch(sim);
  std::optional<int> got;
  sim.spawn("consumer", [&] { got = ch.recvFor(kSecond); });
  sim.spawn("producer", [&] {
    sim.delay(10);
    ch.send(7);
  });
  sim.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 7);
  EXPECT_EQ(sim.now(), 10);
}

TEST(Channel, CloseUnblocksReceiverWithException) {
  Simulator sim;
  bool threw = false;
  Channel<int> ch(sim);
  sim.spawn("consumer", [&] {
    try {
      ch.recv();
    } catch (const ChannelClosed&) {
      threw = true;
    }
  });
  sim.spawn("closer", [&] {
    sim.delay(5);
    ch.close();
  });
  sim.run();
  EXPECT_TRUE(threw);
}

TEST(Channel, CloseDrainsQueuedItemsFirst) {
  Simulator sim;
  Channel<int> ch(sim);
  std::vector<int> got;
  bool closed_seen = false;
  sim.spawn("p", [&] {
    ch.send(1);
    ch.send(2);
    ch.close();
    try {
      got.push_back(ch.recv());
      got.push_back(ch.recv());
      got.push_back(ch.recv());
    } catch (const ChannelClosed&) {
      closed_seen = true;
    }
  });
  sim.run();
  EXPECT_EQ(got, (std::vector<int>{1, 2}));
  EXPECT_TRUE(closed_seen);
}

TEST(Channel, ZeroCapacityRejected) {
  Simulator sim;
  EXPECT_THROW(Channel<int>(sim, 0), mg::UsageError);
}

// Determinism: the same program produces the identical event trace twice.
TEST(Determinism, IdenticalRunsProduceIdenticalLogs) {
  auto runOnce = [] {
    Simulator sim;
    Channel<int> ch(sim);
    std::vector<std::string> log;
    for (int p = 0; p < 4; ++p) {
      sim.spawn("prod" + std::to_string(p), [&, p] {
        for (int i = 0; i < 5; ++i) {
          sim.delay(10 * (p + 1));
          ch.send(p * 100 + i);
        }
      });
    }
    sim.spawn("cons", [&] {
      for (int i = 0; i < 20; ++i) {
        int v = ch.recv();
        log.push_back(std::to_string(sim.now()) + ":" + std::to_string(v));
      }
    });
    sim.run();
    return log;
  };
  EXPECT_EQ(runOnce(), runOnce());
}

TEST(Determinism, EventCounterAdvances) {
  Simulator sim;
  sim.scheduleAt(1, [] {});
  sim.scheduleAt(2, [] {});
  sim.run();
  EXPECT_GE(sim.eventsExecuted(), 2u);
}

// --------------------------------------------------- kernel edge cases ----

TEST(Simulator, RunUntilThenProcessContinues) {
  Simulator sim;
  std::vector<SimTime> log;
  sim.spawn("p", [&] {
    for (int i = 0; i < 3; ++i) {
      sim.delay(100);
      log.push_back(sim.now());
    }
  });
  sim.runUntil(150);
  EXPECT_EQ(log, (std::vector<SimTime>{100}));
  sim.run();
  EXPECT_EQ(log, (std::vector<SimTime>{100, 200, 300}));
}

TEST(Simulator, ManyProcessesTearDownCleanly) {
  // 100 daemons blocked in different primitives; shutdown must unwind all.
  Simulator sim;
  auto cond = std::make_unique<Condition>(sim);
  auto chan = std::make_unique<Channel<int>>(sim);
  for (int i = 0; i < 100; ++i) {
    switch (i % 3) {
      case 0:
        sim.spawn("s" + std::to_string(i), [&] { sim.suspend(); });
        break;
      case 1:
        sim.spawn("c" + std::to_string(i), [&] { cond->wait(); });
        break;
      default:
        sim.spawn("r" + std::to_string(i), [&] { chan->recv(); });
        break;
    }
  }
  sim.run();
  EXPECT_EQ(sim.liveProcessCount(), 100);
  sim.shutdown();
  EXPECT_EQ(sim.liveProcessCount(), 0);
}

TEST(Channel, ManyProducersOneConsumerFifoPerProducer) {
  Simulator sim;
  Channel<std::pair<int, int>> ch(sim);
  constexpr int kProducers = 10;
  constexpr int kItems = 50;
  for (int p = 0; p < kProducers; ++p) {
    sim.spawn("prod" + std::to_string(p), [&, p] {
      for (int i = 0; i < kItems; ++i) {
        sim.delay((p + 1) % 7 + 1);
        ch.send({p, i});
      }
    });
  }
  std::vector<int> last(kProducers, -1);
  bool order_ok = true;
  sim.spawn("cons", [&] {
    for (int n = 0; n < kProducers * kItems; ++n) {
      auto [p, i] = ch.recv();
      if (i != last[static_cast<size_t>(p)] + 1) order_ok = false;
      last[static_cast<size_t>(p)] = i;
    }
  });
  sim.run();
  EXPECT_TRUE(order_ok);
  for (int v : last) EXPECT_EQ(v, kItems - 1);
}

TEST(Condition, KilledWaiterLeavesNoDanglingEntry) {
  // A process killed while waiting must be removed from the waiter list;
  // a later notify must not touch its freed Process.
  Simulator sim;
  auto cond = std::make_unique<Condition>(sim);
  sim.spawn("w", [&] { cond->wait(); });
  sim.run();
  EXPECT_EQ(cond->waiterCount(), 1u);
  sim.shutdown();  // unwinds the waiter through WaiterGuard
  EXPECT_EQ(cond->waiterCount(), 0u);
  cond->notifyAll();  // no waiters, no crash
}

TEST(Simulator, EventStormStaysOrdered) {
  // Many same-time events interleaved with cancellations keep FIFO order.
  Simulator sim;
  std::vector<int> ran;
  std::vector<EventId> ids;
  for (int i = 0; i < 200; ++i) {
    ids.push_back(sim.scheduleAt(10, [&ran, i] { ran.push_back(i); }));
  }
  for (int i = 0; i < 200; i += 2) sim.cancel(ids[static_cast<size_t>(i)]);
  sim.run();
  ASSERT_EQ(ran.size(), 100u);
  for (size_t k = 0; k < ran.size(); ++k) EXPECT_EQ(ran[k], static_cast<int>(2 * k + 1));
}

// ------------------------------------------------- event arena + EventFn --

TEST(EventArena, MillionScheduleCancelStaysBounded) {
  // Regression for the lazy-cancellation kernel, where each cancel left a
  // tombstone in the priority queue: a timer-churn workload (schedule a
  // timeout, cancel it, repeat) grew the queue without bound. The arena
  // cancels in place and recycles slots, so one million churned timeouts
  // must leave the queue empty and the arena no larger than the peak number
  // of *concurrently* pending events.
  Simulator sim;
  constexpr int kTotal = 1'000'000;
  constexpr int kWindow = 64;  // live timeouts at any instant
  std::vector<EventId> window;
  for (int i = 0; i < kTotal; ++i) {
    window.push_back(sim.scheduleAt(1'000'000 + i, [] {}));
    if (window.size() == kWindow) {
      for (EventId id : window) sim.cancel(id);
      window.clear();
    }
  }
  for (EventId id : window) sim.cancel(id);
  EXPECT_EQ(sim.pendingEventCount(), 0u);
  EXPECT_LE(sim.eventArenaSlots(), static_cast<std::size_t>(kWindow));
  sim.run();
  EXPECT_EQ(sim.eventsExecuted(), 0u);
}

TEST(EventArena, CancelledSlotReuseDoesNotConfuseStaleIds) {
  // A cancelled id whose slot was recycled must stay a no-op: the
  // generation tag changes on free, so the stale handle misses.
  Simulator sim;
  bool second_ran = false;
  EventId first = sim.scheduleAt(10, [] {});
  sim.cancel(first);
  EventId second = sim.scheduleAt(20, [&] { second_ran = true; });
  sim.cancel(first);  // stale: same slot, older generation
  sim.run();
  EXPECT_TRUE(second_ran);
  EXPECT_NE(first, second);
}

namespace {
struct InstanceCounter {
  static int live;
  InstanceCounter() { ++live; }
  InstanceCounter(const InstanceCounter&) { ++live; }
  InstanceCounter(InstanceCounter&&) noexcept { ++live; }
  ~InstanceCounter() { --live; }
};
int InstanceCounter::live = 0;
}  // namespace

TEST(EventFn, MoveOnlyCaptureStaysInline) {
  auto p = std::make_unique<int>(41);
  EventFn fn([p = std::move(p)] { ++*p; });
  EXPECT_FALSE(fn.onHeap());
  EXPECT_TRUE(static_cast<bool>(fn));
  EventFn moved = std::move(fn);
  EXPECT_FALSE(static_cast<bool>(fn));  // NOLINT(bugprone-use-after-move)
  moved();
}

TEST(EventFn, LargeCaptureFallsBackToHeap) {
  std::array<std::uint64_t, 16> big{};  // 128 bytes > inline capacity
  big[7] = 7;
  std::uint64_t seen = 0;
  EventFn fn([big, &seen] { seen = big[7]; });
  EXPECT_TRUE(fn.onHeap());
  EventFn moved = std::move(fn);
  moved();
  EXPECT_EQ(seen, 7u);
}

TEST(EventFn, DestructionBalancedAcrossMoves) {
  {
    EventFn fn([c = InstanceCounter{}] { (void)c; });
    EXPECT_EQ(InstanceCounter::live, 1);
    EventFn a = std::move(fn);
    EXPECT_EQ(InstanceCounter::live, 1);  // relocate, not copy
    EventFn b;
    b = std::move(a);
    EXPECT_EQ(InstanceCounter::live, 1);
  }
  EXPECT_EQ(InstanceCounter::live, 0);
}

TEST(EventFn, CancelDestroysCaptureImmediately) {
  Simulator sim;
  EventId id = sim.scheduleAt(10, [c = InstanceCounter{}] { (void)c; });
  EXPECT_EQ(InstanceCounter::live, 1);
  sim.cancel(id);
  // The capture dies at cancel time, not when the slot is later recycled.
  EXPECT_EQ(InstanceCounter::live, 0);
  sim.run();
}

TEST(EventFn, HeapFallbackCounterTracksOnlyOversizeCaptures) {
  Simulator sim;
  const auto& ctr = sim.metrics().counter("sim.kernel.eventfn_heap_fallbacks");
  long long sum = 0;
  for (int i = 0; i < 100; ++i) sim.scheduleAt(i, [&sum, i] { sum += i; });
  EXPECT_EQ(ctr.value(), 0);  // hot-path captures stay inline
  std::array<std::uint64_t, 16> big{};
  sim.scheduleAt(200, [big, &sum] { sum += static_cast<long long>(big[0]); });
  EXPECT_EQ(ctr.value(), 1);
  sim.run();
  EXPECT_EQ(sum, 4950);
}
