// Property-style sweeps over network and platform parameters: invariants
// that must hold across the whole configuration space, not just the presets.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <tuple>
#include <vector>

#include "core/microgrid_platform.h"
#include "core/reference_platform.h"
#include "core/topologies.h"
#include "net/host_stack.h"
#include "net/packet_network.h"
#include "net/partition.h"
#include "util/rng.h"

using namespace mg;
namespace st = mg::sim;

// --------------------------------------------------- TCP throughput law ---

// Across link speeds and latencies, measured TCP goodput must approach
// min(protocol-efficiency * bandwidth, window / RTT).
class TcpGoodputLaw : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(TcpGoodputLaw, GoodputMatchesTheory) {
  auto [bw_bps, latency_s] = GetParam();
  st::Simulator sim;
  net::Topology topo;
  auto a = topo.addHost("a");
  auto b = topo.addHost("b");
  topo.addLink("l", a, b, bw_bps, st::fromSeconds(latency_s), 1 << 20);
  net::PacketNetwork net(sim, std::move(topo), {});
  net::HostStack sa(net, a), sb(net, b);

  const size_t kSize = 4 << 20;
  st::SimTime start = 0, end = 0;
  sim.spawn("server", [&] {
    auto listener = sb.tcp().listen(80);
    auto conn = listener->accept();
    std::vector<std::uint8_t> sink(kSize);
    start = sim.now();
    conn->recvExact(sink.data(), kSize);
    end = sim.now();
  });
  sim.spawn("client", [&] {
    auto conn = sa.tcp().connect(b, 80);
    std::vector<std::uint8_t> data(1 << 16, 0xcd);
    for (size_t sent = 0; sent < kSize; sent += data.size()) conn->send(data.data(), data.size());
    conn->close();
  });
  sim.run();

  const double goodput = kSize * 8.0 / st::toSeconds(end - start);  // bits/s
  const double efficiency_bound = bw_bps * 1460.0 / 1538.0;
  // Window bound: 1 MB receive buffer over the round trip.
  const double rtt = 2.0 * latency_s + 1e-3;  // plus stack/serialization slack
  const double window_bound = (1 << 20) * 8.0 / rtt;
  const double bound = std::min(efficiency_bound, window_bound);
  EXPECT_LT(goodput, bound * 1.02);
  EXPECT_GT(goodput, bound * 0.5) << "bw " << bw_bps << " lat " << latency_s;
}

INSTANTIATE_TEST_SUITE_P(
    LinkSpace, TcpGoodputLaw,
    ::testing::Values(std::tuple{10e6, 1e-3}, std::tuple{100e6, 0.1e-3},
                      std::tuple{100e6, 5e-3}, std::tuple{622e6, 1e-3},
                      std::tuple{1.2e9, 0.05e-3}));

// ------------------------------------------------ conservation property ---

// Whatever the topology and loss rate, delivered payload bytes never exceed
// injected payload bytes, and every injected packet is accounted for as
// delivered or dropped.
class PacketConservation : public ::testing::TestWithParam<double> {};

TEST_P(PacketConservation, EveryPacketAccounted) {
  const double loss = GetParam();
  st::Simulator sim;
  net::Topology topo;
  auto a = topo.addHost("a");
  auto r1 = topo.addRouter("r1");
  auto r2 = topo.addRouter("r2");
  auto b = topo.addHost("b");
  topo.addLink("l0", a, r1, 10e6, st::fromSeconds(1e-3), 1 << 20, loss);
  topo.addLink("l1", r1, r2, 5e6, st::fromSeconds(1e-3), 1 << 20, loss);
  topo.addLink("l2", r2, b, 10e6, st::fromSeconds(1e-3), 1 << 20, loss);
  net::PacketNetwork net(sim, std::move(topo), {});
  std::int64_t delivered_payload = 0;
  net.attachHost(b, [&](net::Packet&& p) { delivered_payload += static_cast<std::int64_t>(p.payload.size()); });

  const int kPackets = 500;
  std::int64_t injected_payload = 0;
  for (int i = 0; i < kPackets; ++i) {
    net::Packet p;
    p.src = a;
    p.dst = b;
    p.protocol = net::Protocol::Udp;
    p.payload.resize(static_cast<size_t>(100 + (i * 37) % 1300));
    injected_payload += static_cast<std::int64_t>(p.payload.size());
    net.send(std::move(p));
  }
  sim.run();
  const auto& s = net.stats();
  EXPECT_EQ(s.packets_sent, kPackets);
  EXPECT_EQ(s.packets_delivered + s.packets_dropped_queue + s.packets_dropped_loss +
                s.packets_dropped_down,
            kPackets);
  EXPECT_LE(delivered_payload, injected_payload);
  EXPECT_EQ(delivered_payload, s.bytes_delivered);
  if (loss == 0.0) {
    // No random loss and queues big enough at this rate: drops only from
    // queue overflow, which the slow middle link can cause.
    EXPECT_EQ(s.packets_dropped_loss, 0);
  } else {
    EXPECT_GT(s.packets_dropped_loss, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(LossRates, PacketConservation, ::testing::Values(0.0, 0.01, 0.1, 0.3));

// ----------------------------------------- compute-time virtualization ----

// For any (virtual speed, physical speed, rate) combination, a sustained
// compute of W ops must take ~W / V virtual seconds on the MicroGrid.
class ComputeVirtualization
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(ComputeVirtualization, VirtualTimeEqualsWorkOverSpeed) {
  auto [virt_ops, phys_ops, slowdown] = GetParam();
  core::VirtualGridConfig cfg;
  cfg.addPhysical("p", phys_ops);
  cfg.addHost("v", "1.1.1.1", virt_ops, 1 << 20, "p");
  cfg.addRouter("sw");
  cfg.addLink("l", "v", "sw", 100e6, 1e-4);
  core::MicroGridOptions opts;
  opts.slowdown = slowdown;
  core::MicroGridPlatform platform(cfg, opts);
  const double work = virt_ops * 2.0;  // two virtual seconds of work
  double t = -1;
  platform.spawnOn("v", "w", [&](vos::HostContext& ctx) {
    ctx.compute(work);
    t = ctx.wallTime();
  });
  platform.run();
  EXPECT_NEAR(t, 2.0, 0.07) << "V=" << virt_ops << " P=" << phys_ops << " slow=" << slowdown;
}

INSTANTIATE_TEST_SUITE_P(Speeds, ComputeVirtualization,
                         ::testing::Values(std::tuple{533e6, 533e6, 1.0},   // matched
                                           std::tuple{100e6, 533e6, 1.0},   // slow virtual
                                           std::tuple{2e9, 533e6, 1.0},     // fast virtual
                                           std::tuple{533e6, 533e6, 4.0},   // slowed emulation
                                           std::tuple{300e6, 1e9, 2.0}));

// ------------------------------------------------ reference agreement -----

// For a pure compute + single transfer workload, the two platforms must
// agree across bandwidths (the network models differ only in protocol-level
// detail).
class PlatformAgreement : public ::testing::TestWithParam<double> {};

TEST_P(PlatformAgreement, BulkTransferTimesAgree) {
  const double bw = GetParam();
  auto makeCfg = [&] {
    core::topologies::AlphaClusterParams params;
    params.hosts = 2;
    params.bandwidth_bps = bw;
    return core::topologies::alphaCluster(params);
  };
  auto timeOn = [&](core::Platform& platform) {
    double t = -1;
    platform.spawnOn("vm0.ucsd.edu", "server", [&](vos::HostContext& ctx) {
      auto listener = ctx.listen(80);
      auto sock = listener->accept();
      std::vector<std::uint8_t> sink(1 << 20);
      sock->recvExact(sink.data(), sink.size());
      t = ctx.wallTime();
    });
    platform.spawnOn("vm1.ucsd.edu", "client", [&](vos::HostContext& ctx) {
      ctx.sleep(0.001);
      auto sock = ctx.connect("vm0.ucsd.edu", 80);
      std::vector<std::uint8_t> data(1 << 20, 1);
      sock->send(data.data(), data.size());
      sock->close();
    });
    platform.run();
    return t;
  };
  auto ref_cfg = makeCfg();
  core::ReferencePlatform ref(ref_cfg);
  const double t_ref = timeOn(ref);
  auto emu_cfg = makeCfg();
  core::MicroGridPlatform emu(emu_cfg);
  const double t_emu = timeOn(emu);
  EXPECT_NEAR(t_emu / t_ref, 1.0, 0.25) << "bw " << bw;
}

INSTANTIATE_TEST_SUITE_P(Bandwidths, PlatformAgreement,
                         ::testing::Values(10e6, 100e6, 622e6, 1.2e9));

// ----------------------------------------------------- same-seed runs -----

// Determinism property (DESIGN.md "Observability"): the kernel is logically
// single-threaded and every random draw is seeded, so two identically
// configured runs must agree event-for-event — identical event counts and
// byte-identical metrics snapshots, across seeds and loss rates.
class SameSeedDeterminism : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SameSeedDeterminism, EventCountsAndSnapshotsMatch) {
  auto runOnce = [&](std::uint64_t seed) {
    st::Simulator sim;
    net::Topology topo;
    auto a = topo.addHost("a");
    auto r = topo.addRouter("r");
    auto b = topo.addHost("b");
    topo.addLink("l0", a, r, 10e6, st::fromSeconds(1e-3), 64 << 10, 0.05);
    topo.addLink("l1", r, b, 5e6, st::fromSeconds(1e-3), 64 << 10, 0.05);
    net::PacketNetworkOptions nopts;
    nopts.seed = seed;
    net::PacketNetwork net(sim, std::move(topo), nopts);
    net.attachHost(b, [](net::Packet&&) {});
    for (int i = 0; i < 300; ++i) {
      net::Packet p;
      p.src = a;
      p.dst = b;
      p.protocol = net::Protocol::Udp;
      p.payload.resize(static_cast<size_t>(64 + (i * 131) % 1200));
      net.send(std::move(p));
    }
    sim.run();
    return std::pair{sim.eventsExecuted(), sim.metrics().snapshotJson()};
  };
  const auto first = runOnce(GetParam());
  const auto second = runOnce(GetParam());
  EXPECT_EQ(first.first, second.first);
  EXPECT_EQ(first.second, second.second);
  // With 5% loss some drops must actually have occurred, so the snapshots
  // being equal is a statement about real stochastic state, not zeros.
  EXPECT_NE(first.second.find("\"net.packet.dropped_loss\":"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SameSeedDeterminism,
                         ::testing::Values(1ull, 42ull, 0xC0FFEEull, 987654321ull));

// --------------------------------------------- kernel heap vs naive oracle --

// The slab-arena 4-ary heap with in-place cancellation must dispatch exactly
// the same events in exactly the same order as the obviously-correct model:
// a flat vector sorted by (time, sequence). Randomized schedule / cancel /
// run interleavings probe every heap path (root, interior, and tail
// removals; sift-up and sift-down repairs; slot recycling).
TEST(KernelHeapProperty, RandomChurnMatchesSortedVectorOracle) {
  struct OracleEvent {
    st::SimTime time;
    std::uint64_t seq;  // schedule order: tiebreak among equal times
    int value;
    st::EventId id;
  };
  for (std::uint64_t seed : {7ull, 1234ull, 0xDECAFull}) {
    st::Simulator sim;
    util::Rng rng(seed);
    std::vector<int> fired;         // what the kernel actually ran
    std::vector<int> oracle_fired;  // what the model says should have run
    std::vector<OracleEvent> pending;
    std::uint64_t next_seq = 0;
    int next_value = 0;

    auto oracleRunUntil = [&](st::SimTime t) {
      std::vector<OracleEvent> due;
      for (const auto& e : pending) {
        if (e.time <= t) due.push_back(e);
      }
      std::sort(due.begin(), due.end(), [](const OracleEvent& a, const OracleEvent& b) {
        return a.time != b.time ? a.time < b.time : a.seq < b.seq;
      });
      for (const auto& e : due) oracle_fired.push_back(e.value);
      std::erase_if(pending, [&](const OracleEvent& e) { return e.time <= t; });
    };

    for (int step = 0; step < 5000; ++step) {
      const std::uint64_t op = rng.below(10);
      if (op < 6) {  // schedule
        const st::SimTime t = sim.now() + static_cast<st::SimTime>(rng.below(1000));
        const int v = next_value++;
        const st::EventId id = sim.scheduleAt(t, [&fired, v] { fired.push_back(v); });
        pending.push_back({t, next_seq++, v, id});
      } else if (op < 9) {  // cancel a random pending event
        if (!pending.empty()) {
          const std::size_t k = rng.below(pending.size());
          sim.cancel(pending[k].id);
          pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(k));
        }
      } else {  // advance time, firing everything due
        const st::SimTime t = sim.now() + static_cast<st::SimTime>(rng.below(500));
        sim.runUntil(t);
        oracleRunUntil(t);
        ASSERT_EQ(fired, oracle_fired) << "diverged at step " << step << " seed " << seed;
        ASSERT_EQ(sim.pendingEventCount(), pending.size());
      }
    }
    sim.run();
    oracleRunUntil(std::numeric_limits<st::SimTime>::max());
    EXPECT_EQ(fired, oracle_fired) << "seed " << seed;
    EXPECT_EQ(sim.pendingEventCount(), 0u);
    // Arena footprint tracks peak concurrency, not total scheduled.
    EXPECT_LE(sim.eventArenaSlots(), 5000u);
  }
}

// ------------------------------------- partition planning, random shapes ---

namespace {

/// Random multi-cluster grid: 2-5 campus clusters (router + 1-6 hosts on
/// fast short links) joined into a random tree by slow WAN links. The shape
/// every partition property must survive; generation is a pure function of
/// the Rng, so the same seed rebuilds the same topology.
net::Topology randomGrid(util::Rng& rng) {
  net::Topology topo;
  const int clusters = 2 + static_cast<int>(rng.below(4));
  std::vector<net::NodeId> routers;
  for (int c = 0; c < clusters; ++c) {
    routers.push_back(topo.addRouter("r" + std::to_string(c)));
    const int hosts = 1 + static_cast<int>(rng.below(6));
    const st::SimTime lan_latency =
        static_cast<st::SimTime>(10 + rng.below(90)) * st::kMicrosecond;
    for (int i = 0; i < hosts; ++i) {
      auto h = topo.addHost("h" + std::to_string(c) + "_" + std::to_string(i));
      topo.addLink("l" + std::to_string(c) + "_" + std::to_string(i), h, routers.back(),
                   100e6, lan_latency, 1 << 20);
    }
  }
  for (int c = 1; c < clusters; ++c) {
    const auto peer = routers[rng.below(static_cast<std::uint64_t>(c))];
    topo.addLink("wan" + std::to_string(c), routers[static_cast<std::size_t>(c)], peer, 45e6,
                 static_cast<st::SimTime>(5 + rng.below(45)) * st::kMillisecond, 1 << 20);
  }
  return topo;
}

}  // namespace

class PartitionProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PartitionProperty, PlanInvariantsHoldOnRandomTopologies) {
  util::Rng rng(GetParam());
  net::Topology topo = randomGrid(rng);
  for (int max_partitions : {2, 4, 8}) {
    const net::PartitionPlan plan = net::planPartitions(topo, max_partitions);
    // Partition ids are dense and in range for every node.
    EXPECT_GE(plan.partitions, 1);
    EXPECT_LE(plan.partitions, max_partitions);
    for (net::NodeId n = 0; n < topo.nodeCount(); ++n) {
      EXPECT_GE(plan.partitionOf(n), 0);
      EXPECT_LT(plan.partitionOf(n), plan.partitions);
    }
    // The plan is a pure function of the topology: replanning agrees.
    const net::PartitionPlan again = net::planPartitions(topo, max_partitions);
    EXPECT_EQ(plan.partition_of, again.partition_of);
    EXPECT_EQ(plan.cut_links, again.cut_links);
    // Lookahead soundness: every link faster than the cut latency stays
    // inside one partition, and every cut edge can fund the lookahead.
    for (net::LinkId l = 0; l < topo.linkCount(); ++l) {
      const auto& lk = topo.link(l);
      const bool crosses = plan.partitionOf(lk.a) != plan.partitionOf(lk.b);
      if (crosses) {
        EXPECT_GE(lk.latency, plan.cut_latency) << "link " << lk.name;
      } else {
        continue;
      }
    }
    if (plan.partitions > 1) {
      EXPECT_GT(plan.cut_latency, 0);
      ASSERT_FALSE(plan.cut_links.empty());
      for (net::LinkId l : plan.cut_links) {
        EXPECT_NE(plan.partitionOf(topo.link(l).a), plan.partitionOf(topo.link(l).b));
      }
    }
  }
}

TEST_P(PartitionProperty, ShardedDeliveryMatchesSequentialOracle) {
  // The physics oracle: on a loss-free grid, the laned run must deliver
  // exactly the same multiset of (time, src, dst, bytes) as the classic
  // single-heap kernel, and the laned run itself must be byte-identical at
  // 1 and 4 workers. Tie order between concurrent deliveries may legally
  // differ between the two kernels (different heaps), hence multiset.
  struct Send {
    net::NodeId src, dst;
    st::SimTime at;
    std::size_t bytes;
  };
  enum class Mode { Classic, Laned1, Laned4 };
  auto runMode = [&](Mode mode) {
    util::Rng topo_rng(GetParam());
    net::Topology topo = randomGrid(topo_rng);
    std::vector<net::NodeId> hosts;
    for (net::NodeId n = 0; n < topo.nodeCount(); ++n) {
      if (topo.node(n).kind == net::NodeKind::Host) hosts.push_back(n);
    }
    util::Rng traffic_rng(GetParam() ^ 0xbadcab1eull);
    std::vector<Send> sends;
    for (int i = 0; i < 200; ++i) {
      const auto a = hosts[traffic_rng.below(hosts.size())];
      const auto b = hosts[traffic_rng.below(hosts.size())];
      if (a == b) continue;
      sends.push_back({a, b, static_cast<st::SimTime>(i) * 200 * st::kMicrosecond,
                       static_cast<std::size_t>(64 + traffic_rng.below(1000))});
    }

    st::Simulator sim;
    const net::PartitionPlan plan = net::planPartitions(topo, 8);
    net::PacketNetworkOptions nopts;
    net::PacketNetwork net(sim, std::move(topo), nopts);
    if (mode != Mode::Classic && plan.partitions > 1) {
      sim.configureParallel(plan.partitions + 1, mode == Mode::Laned4 ? 4 : 1,
                            std::min(nopts.host_stack_delay, plan.cut_latency));
      net.setPartitionPlan(plan);
    }
    std::vector<std::string> log;
    for (net::NodeId h : hosts) {
      net.attachHost(h, [&log, &net, &sim, h](net::Packet&& p) {
        log.push_back(std::to_string(sim.now()) + " " + std::to_string(p.src) + "->" +
                      std::to_string(h) + " #" + std::to_string(p.payload.size()));
      });
    }
    for (const Send& s : sends) {
      sim.scheduleAt(s.at, [&net, s] {
        net::Packet p;
        p.src = s.src;
        p.dst = s.dst;
        p.protocol = net::Protocol::Udp;
        p.payload.assign(s.bytes, 0x77);
        net.send(std::move(p));
      });
    }
    sim.run();
    EXPECT_EQ(sim.metrics().counterValue("sim.parallel.horizon_violations"), 0);
    EXPECT_EQ(log.size(), sends.size()) << "loss-free grid must deliver everything";
    return log;
  };

  const std::vector<std::string> classic = runMode(Mode::Classic);
  const std::vector<std::string> laned = runMode(Mode::Laned1);
  const std::vector<std::string> laned4 = runMode(Mode::Laned4);
  // Worker count changes nothing, bit for bit, including tie order.
  EXPECT_EQ(laned, laned4);
  // Sharding preserves the physics: same deliveries at the same times.
  auto sorted = [](std::vector<std::string> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(sorted(classic), sorted(laned));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionProperty,
                         ::testing::Values(3ull, 17ull, 0xFEEDull, 271828ull, 31337ull));

// ------------------------------------- incremental max-min sharing oracle ---

// The component-scoped incremental recompute must be *exactly* equivalent to
// re-running progressive filling over every active flow (DESIGN.md §8,
// "Incremental sharing"): same completion and abort times to the tick, same
// stall/resume decisions, bitwise-identical sampled rates. Random topologies
// under random churn — starts, completions, degrades (including to zero
// bandwidth), restores, link down/up — with twin simulators, one per mode.
namespace {

struct FlowScenario {
  // Topology.
  int hosts = 0, routers = 0;
  struct L { int a, b; double bw; double lat_s; };
  std::vector<L> links;
  // Timed script.
  struct Ev { double at_s; int kind; int x; double v; };  // kind: 0 start(x=src*1000+dst, v=bits)
                                                          // 1 degrade(x=link, v=mult)
                                                          // 2 restore(x=link)
                                                          // 3 down(x=link)  4 up(x=link)
  std::vector<Ev> script;
};

FlowScenario makeFlowScenario(std::uint64_t seed) {
  util::Rng rng(seed);
  FlowScenario s;
  s.hosts = 2 + static_cast<int>(rng.below(5));    // 2..6 hosts
  s.routers = 1 + static_cast<int>(rng.below(3));  // 1..3 routers
  const int n = s.hosts + s.routers;
  const double bws[] = {10e6, 50e6, 100e6, 622e6};
  // Random spanning tree keeps everything connected; extra links add route
  // diversity (and parallel edges exercise the per-dlink bookkeeping).
  for (int i = 1; i < n; ++i) {
    s.links.push_back({i, static_cast<int>(rng.below(static_cast<std::uint64_t>(i))),
                       bws[rng.below(4)], rng.uniform(0.1e-3, 2e-3)});
  }
  const int extra = static_cast<int>(rng.below(3));
  for (int e = 0; e < extra; ++e) {
    const int a = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
    const int b = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
    if (a == b) continue;
    s.links.push_back({a, b, bws[rng.below(4)], rng.uniform(0.1e-3, 2e-3)});
  }
  const int events = 8 + static_cast<int>(rng.below(12));
  double t = 0;
  for (int e = 0; e < events; ++e) {
    t += rng.uniform(1e-3, 80e-3);
    const auto link = static_cast<int>(rng.below(s.links.size()));
    const int kind = static_cast<int>(rng.below(10));
    if (kind < 5) {  // starts dominate so contention actually builds
      int src = static_cast<int>(rng.below(static_cast<std::uint64_t>(s.hosts)));
      int dst = static_cast<int>(rng.below(static_cast<std::uint64_t>(s.hosts)));
      if (src == dst) dst = (dst + 1) % s.hosts;
      s.script.push_back({t, 0, src * 1000 + dst, rng.uniform(0.2e6, 30e6)});
    } else if (kind < 7) {
      const double mults[] = {0.0, 0.25, 0.5, 2.0};  // zero = stall hazard
      s.script.push_back({t, 1, link, mults[rng.below(4)]});
    } else if (kind == 7) {
      s.script.push_back({t, 2, link, 0});
    } else if (kind == 8) {
      s.script.push_back({t, 3, link, 0});
    } else {
      s.script.push_back({t, 4, link, 0});
    }
  }
  return s;
}

/// Replay the scenario on a fresh simulator; the log captures everything
/// observable — event order, times, reasons, bitwise rate samples.
std::vector<std::string> runFlowScenario(const FlowScenario& s, bool incremental) {
  st::Simulator sim;
  net::Topology topo;
  for (int h = 0; h < s.hosts; ++h) topo.addHost("h" + std::to_string(h));
  for (int r = 0; r < s.routers; ++r) topo.addRouter("r" + std::to_string(r));
  for (std::size_t i = 0; i < s.links.size(); ++i) {
    const auto& l = s.links[i];
    topo.addLink("l" + std::to_string(i), l.a, l.b, l.bw, st::fromSeconds(l.lat_s));
  }
  net::FlowNetworkOptions opts;
  opts.incremental = incremental;
  net::FlowNetwork fn(sim, std::move(topo), opts);
  auto& eng = fn.engine();

  std::vector<std::string> log;
  std::vector<net::FlowId> ids;
  auto fmt = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%a", v);  // hex float: bitwise-faithful
    return std::string(buf);
  };
  int flow_no = 0;
  for (const auto& ev : s.script) {
    sim.scheduleAt(st::fromSeconds(ev.at_s), [&, ev] {
      switch (ev.kind) {
        case 0: {
          const int idx = flow_no++;
          try {
            net::FlowId id = eng.startBits(
                ev.x / 1000, ev.x % 1000, ev.v, 0,
                [&log, idx, &sim] {
                  log.push_back("done " + std::to_string(idx) + " @" + std::to_string(sim.now()));
                },
                [&log, idx, &sim](const std::string& r) {
                  log.push_back("abort " + std::to_string(idx) + " " + r + " @" +
                                std::to_string(sim.now()));
                });
            ids.push_back(id);
          } catch (const ConfigError&) {
            log.push_back("noroute " + std::to_string(idx));
          }
          break;
        }
        case 1: {
          net::LinkParams p = fn.linkParams(ev.x);
          p.bandwidth_bps = s.links[static_cast<std::size_t>(ev.x)].bw * ev.v;
          fn.applyLinkParams(ev.x, p);
          break;
        }
        case 2: {
          net::LinkParams p = fn.linkParams(ev.x);
          p.bandwidth_bps = s.links[static_cast<std::size_t>(ev.x)].bw;
          fn.applyLinkParams(ev.x, p);
          break;
        }
        case 3:
          fn.setLinkUp(ev.x, false);
          break;
        case 4:
          fn.setLinkUp(ev.x, true);
          break;
      }
      // Bitwise rate + stall sample of every flow ever started: catches a
      // wrong intermediate share even when completion times still agree.
      std::string sample = "rates @" + std::to_string(sim.now());
      for (net::FlowId id : ids) {
        sample += " " + fmt(eng.currentRateBps(id)) + (eng.isStalled(id) ? "*" : "");
      }
      log.push_back(sample);
      EXPECT_TRUE(eng.indexConsistent());
    });
  }
  sim.run();
  const auto stats = fn.stats();
  log.push_back("stats " + std::to_string(stats.flows_started) + "/" +
                std::to_string(stats.flows_completed) + "/" + std::to_string(stats.flows_aborted) +
                "/" + std::to_string(stats.flows_stalled) + "/" +
                std::to_string(stats.share_recomputes));
  EXPECT_TRUE(eng.indexConsistent());
  // The event queue only runs dry when no drain is pending, so whatever is
  // still active must be parked as stalled (degraded to zero with no later
  // restore in the script) — anything else is a leaked flow.
  int stalled_left = 0;
  std::string leftovers = "leftover";
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (!eng.isStalled(ids[i])) continue;
    ++stalled_left;
    leftovers += " " + std::to_string(i);
  }
  EXPECT_EQ(eng.activeFlows(), stalled_left) << "non-stalled flows leaked past drain/abort";
  log.push_back(leftovers);
  return log;
}

}  // namespace

TEST(FlowIncrementalProperty, MatchesFullRecomputeOracleOn100Seeds) {
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    const FlowScenario s = makeFlowScenario(seed * 0x9E3779B97F4A7C15ull + seed);
    const std::vector<std::string> incremental = runFlowScenario(s, true);
    const std::vector<std::string> full = runFlowScenario(s, false);
    ASSERT_EQ(incremental, full) << "seed " << seed;
  }
}
