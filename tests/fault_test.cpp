// Fault-injection subsystem tests: plan parsing and validation, injector
// mechanics (auto-restore, partitions, availability accounting), network
// fault bookkeeping (drop counters, route recomputes), CPU-scheduler
// teardown on crash, and the end-to-end crash -> FAILED -> resubmit
// resilience path through the launcher.
#include <gtest/gtest.h>

#include "core/launcher.h"
#include "core/microgrid_platform.h"
#include "core/topologies.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "gis/directory.h"
#include "grid/gram.h"
#include "net/host_stack.h"
#include "npb/npb.h"
#include "vmpi/comm.h"
#include "vos/cpu_scheduler.h"

#include "test_scenarios.h"

using namespace mg;
namespace st = mg::sim;

// ------------------------------------------------------------- FaultPlan --

TEST(FaultPlanTest, ParsesSortsAndFillsFields) {
  auto plan = fault::FaultPlan::fromConfig(util::Config::parse(R"(
[fault crash]
at = 2s
kind = host_crash
target = vm3.ucsd.edu
duration = 5s

[fault degrade]
at = 1s
kind = link_degrade
target = eth1
loss = 0.01
latency_mult = 4
bandwidth_mult = 0.5

[fault split]
at = 1s
kind = partition
nodes = vm0.ucsd.edu, vm1.ucsd.edu
)"));
  ASSERT_EQ(plan.size(), 3u);
  // Sorted by `at`; same-time events keep file order (degrade before split).
  EXPECT_EQ(plan.events()[0].name, "degrade");
  EXPECT_EQ(plan.events()[1].name, "split");
  EXPECT_EQ(plan.events()[2].name, "crash");

  const fault::FaultEvent& degrade = plan.events()[0];
  EXPECT_EQ(degrade.kind, fault::FaultKind::LinkDegrade);
  EXPECT_EQ(degrade.target, "eth1");
  EXPECT_DOUBLE_EQ(degrade.loss, 0.01);
  EXPECT_DOUBLE_EQ(degrade.latency_mult, 4.0);
  EXPECT_DOUBLE_EQ(degrade.bandwidth_mult, 0.5);
  EXPECT_DOUBLE_EQ(degrade.duration, 0.0);

  const fault::FaultEvent& split = plan.events()[1];
  ASSERT_EQ(split.nodes.size(), 2u);
  EXPECT_EQ(split.nodes[0], "vm0.ucsd.edu");
  EXPECT_EQ(split.nodes[1], "vm1.ucsd.edu");

  const fault::FaultEvent& crash = plan.events()[2];
  EXPECT_EQ(crash.kind, fault::FaultKind::HostCrash);
  EXPECT_DOUBLE_EQ(crash.duration, 5.0);
}

TEST(FaultPlanTest, RejectsInvalidSections) {
  auto parse = [](const char* text) { return fault::FaultPlan::fromConfig(util::Config::parse(text)); };
  // Unknown kind.
  EXPECT_THROW(parse("[fault f]\nat = 1s\nkind = meteor\ntarget = eth0\n"), ConfigError);
  // Link faults need a target.
  EXPECT_THROW(parse("[fault f]\nat = 1s\nkind = link_down\n"), mg::Error);
  // A partition needs its node set.
  EXPECT_THROW(parse("[fault f]\nat = 1s\nkind = partition\n"), ConfigError);
  // heal is not restorable, so it cannot take a duration.
  EXPECT_THROW(parse("[fault f]\nat = 1s\nkind = heal\nduration = 2s\n"), ConfigError);
  // Brownout factor must be in (0, 1].
  EXPECT_THROW(
      parse("[fault f]\nat = 1s\nkind = cpu_brownout\ntarget = h\nfactor = 1.5\n"),
      ConfigError);
  // A degrade that changes nothing is a config mistake.
  EXPECT_THROW(parse("[fault f]\nat = 1s\nkind = link_degrade\ntarget = eth0\n"), ConfigError);
  // Time must be non-negative.
  EXPECT_THROW(parse("[fault f]\nat = -1s\nkind = link_down\ntarget = eth0\n"), mg::Error);
}

TEST(FaultPlanTest, MergeKeepsStableTimeOrder) {
  auto mk = [](double at, const char* name) {
    fault::FaultEvent ev;
    ev.at = at;
    ev.name = name;
    ev.kind = fault::FaultKind::LinkDown;
    ev.target = "eth0";
    return ev;
  };
  fault::FaultPlan a;
  a.add(mk(1.0, "a1"));
  a.add(mk(3.0, "a2"));
  fault::FaultPlan b;
  b.add(mk(1.0, "b1"));
  b.add(mk(2.0, "b2"));
  a.merge(b);
  ASSERT_EQ(a.size(), 4u);
  EXPECT_EQ(a.events()[0].name, "a1");  // ties break toward the earlier plan
  EXPECT_EQ(a.events()[1].name, "b1");
  EXPECT_EQ(a.events()[2].name, "b2");
  EXPECT_EQ(a.events()[3].name, "a2");
}

TEST(FaultPlanTest, UnknownKeysRejectedNamingKeyAndAcceptedSet) {
  // A misspelled `duration` must not silently yield a permanent fault; the
  // message names the offending key AND lists what the kind accepts.
  try {
    fault::FaultPlan::fromConfig(util::Config::parse(
        "[fault f]\nat = 1s\nkind = link_down\ntarget = eth0\ndurration = 5s\n"));
    FAIL() << "stray key was accepted";
  } catch (const ConfigError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("durration"), std::string::npos) << msg;
    EXPECT_NE(msg.find("accepted"), std::string::npos) << msg;
    EXPECT_NE(msg.find("duration"), std::string::npos) << msg;
  }
  // Keys valid for one kind are still rejected for another (loss is a
  // link_degrade knob, not a link_down one).
  EXPECT_THROW(fault::FaultPlan::fromConfig(util::Config::parse(
                   "[fault f]\nat = 1s\nkind = link_down\ntarget = eth0\nloss = 0.5\n")),
               ConfigError);
}

TEST(FaultPlanTest, DuplicateTimestampsKeepFileOrderThroughIniRoundTrip) {
  const char* ini = R"(
[fault second]
at = 1s
kind = link_down
target = eth1

[fault first]
at = 0.5s
kind = link_down
target = eth0

[fault also-at-1]
at = 1s
kind = host_crash
target = vm3.ucsd.edu
)";
  const auto plan = fault::FaultPlan::fromConfig(util::Config::parse(ini));
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan.events()[0].name, "first");
  EXPECT_EQ(plan.events()[1].name, "second");     // same-time: file order
  EXPECT_EQ(plan.events()[2].name, "also-at-1");

  // toIni() serializes schedule order; reparsing reproduces the plan
  // exactly, duplicate timestamps included (the explorer's minimal
  // reproductions depend on this being lossless).
  const auto reparsed = fault::FaultPlan::fromConfig(util::Config::parse(plan.toIni()));
  EXPECT_EQ(reparsed.events(), plan.events());
}

TEST(FaultPlanTest, EmptyPlanRoundTripsToEmpty) {
  const fault::FaultPlan empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.toIni(), "");
  const auto reparsed = fault::FaultPlan::fromConfig(util::Config::parse(""));
  EXPECT_TRUE(reparsed.empty());
  EXPECT_EQ(reparsed.events(), empty.events());
}

TEST(FaultPlanTest, EveryKindRoundTripsThroughIni) {
  fault::FaultPlan plan;
  plan.add(mgtest::crashVm3(2.0, 5.0));
  plan.add(mgtest::lossyEth1(0.02, 10.0, 1.0));
  fault::FaultEvent part;
  part.at = 3.0;
  part.kind = fault::FaultKind::Partition;
  part.name = "split";
  part.nodes = {"vm0.ucsd.edu", "vm1.ucsd.edu"};
  plan.add(part);
  fault::FaultEvent mend;
  mend.at = 4.0;
  mend.kind = fault::FaultKind::Heal;
  mend.name = "mend";
  mend.target = "split";
  plan.add(mend);
  fault::FaultEvent brown;
  brown.at = 5.0;
  brown.kind = fault::FaultKind::CpuBrownout;
  brown.name = "brown";
  brown.target = "vm0.ucsd.edu";
  brown.factor = 0.25;
  brown.duration = 2.0;
  plan.add(brown);
  fault::FaultEvent down = mgtest::simpleEvent(fault::FaultKind::LinkDown, "eth2", 6.0);
  down.name = "down";
  plan.add(down);
  fault::FaultEvent up = mgtest::simpleEvent(fault::FaultKind::LinkUp, "eth2", 7.0);
  up.name = "up";
  plan.add(up);
  fault::FaultEvent restart = mgtest::simpleEvent(fault::FaultKind::HostRestart, "vm3.ucsd.edu", 8.0);
  restart.name = "revive";
  plan.add(restart);

  const auto reparsed = fault::FaultPlan::fromConfig(util::Config::parse(plan.toIni()));
  EXPECT_EQ(reparsed.events(), plan.events());
}

// --------------------------------------------------------- FaultInjector --

using mgtest::simpleEvent;

TEST(FaultInjectorTest, ValidatesTargetsAgainstGrid) {
  core::MicroGridPlatform p(core::topologies::alphaCluster());

  fault::FaultPlan bad_link;
  bad_link.add(simpleEvent(fault::FaultKind::LinkDown, "no-such-link"));
  EXPECT_THROW(fault::FaultInjector(p, bad_link), ConfigError);

  fault::FaultPlan bad_host;
  bad_host.add(simpleEvent(fault::FaultKind::HostCrash, "ghost.ucsd.edu"));
  EXPECT_THROW(fault::FaultInjector(p, bad_host), ConfigError);

  fault::FaultPlan bad_node;
  fault::FaultEvent part = simpleEvent(fault::FaultKind::Partition, "");
  part.name = "split";
  part.nodes = {"vm0.ucsd.edu", "no-such-node"};
  bad_node.add(part);
  EXPECT_THROW(fault::FaultInjector(p, bad_node), ConfigError);

  fault::FaultPlan bad_heal;
  bad_heal.add(simpleEvent(fault::FaultKind::Heal, "never-partitioned"));
  EXPECT_THROW(fault::FaultInjector(p, bad_heal), ConfigError);

  fault::FaultPlan ok;
  ok.add(simpleEvent(fault::FaultKind::LinkDown, "eth0"));
  EXPECT_NO_THROW(fault::FaultInjector(p, ok));
}

TEST(FaultInjectorTest, RegistersAllCountersUpFront) {
  core::MicroGridPlatform p(core::topologies::alphaCluster());
  fault::FaultInjector injector(p, fault::FaultPlan{});
  // The metrics registry's contents must not depend on which faults fire:
  // an empty plan still registers every fault.* instrument.
  const std::string json = p.simulator().metrics().snapshotJson();
  for (const char* name : {"fault.injected", "fault.link_down", "fault.link_up",
                           "fault.link_degrade", "fault.host_crash", "fault.host_restart",
                           "fault.cpu_brownout", "fault.partition", "fault.heal"}) {
    EXPECT_NE(json.find(name), std::string::npos) << name;
  }
  EXPECT_EQ(injector.injected(), 0);
}

TEST(FaultInjectorTest, LinkFlapAutoRestoresAndRecomputesOncePerChange) {
  core::MicroGridPlatform p(core::topologies::alphaCluster());
  const auto& m = p.simulator().metrics();
  const std::int64_t recomputes_before = m.counterValue("net.route.recomputes");

  fault::FaultPlan plan;
  plan.add(simpleEvent(fault::FaultKind::LinkDown, "eth0", 0.1, 0.2));
  fault::FaultInjector injector(p, std::move(plan));
  injector.arm();
  p.run();

  EXPECT_EQ(m.counterValue("fault.link_down"), 1);
  EXPECT_EQ(m.counterValue("fault.link_up"), 1);  // the auto-restore inverse
  EXPECT_EQ(injector.injected(), 2);
  // Exactly one Dijkstra rebuild per actual state change: down, then up.
  EXPECT_EQ(m.counterValue("net.route.recomputes") - recomputes_before, 2);
  const net::Topology& topo = p.network().topology();
  EXPECT_TRUE(topo.link(topo.findLink("eth0")).up);
}

TEST(FaultInjectorTest, PartitionThenHealRestoresEveryCutLink) {
  core::MicroGridPlatform p(core::topologies::alphaCluster());
  fault::FaultPlan plan;
  fault::FaultEvent part = simpleEvent(fault::FaultKind::Partition, "", 0.1, 0.3);
  part.name = "split";
  part.nodes = {"vm0.ucsd.edu", "vm1.ucsd.edu"};
  plan.add(part);
  fault::FaultInjector injector(p, std::move(plan));
  injector.arm();
  p.run();

  const auto& m = p.simulator().metrics();
  EXPECT_EQ(m.counterValue("fault.partition"), 1);
  EXPECT_EQ(m.counterValue("fault.heal"), 1);  // the auto-heal inverse
  const net::Topology& topo = p.network().topology();
  for (const char* link : {"eth0", "eth1", "eth2", "eth3"}) {
    EXPECT_TRUE(topo.link(topo.findLink(link)).up) << link;
  }
}

TEST(FaultInjectorTest, AvailabilityReportMath) {
  core::MicroGridPlatform p(core::topologies::alphaCluster());
  fault::FaultPlan plan;
  plan.add(simpleEvent(fault::FaultKind::HostCrash, "vm3.ucsd.edu", 1.0, 2.0));
  fault::FaultInjector injector(p, std::move(plan));
  injector.arm();
  p.run();

  const auto reports = injector.report(10.0);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].host, "vm3.ucsd.edu");
  EXPECT_EQ(reports[0].crashes, 1);
  EXPECT_NEAR(reports[0].downtime_seconds, 2.0, 1e-6);
  EXPECT_NEAR(reports[0].availability, 0.8, 1e-6);
  EXPECT_NEAR(reports[0].mttr_seconds, 2.0, 1e-6);
  EXPECT_NE(injector.renderReport(10.0).find("vm3.ucsd.edu"), std::string::npos);
}

// ------------------------------------------------- degenerate schedules --
//
// Regression tests for ISSUE 10: a fault event whose precondition already
// holds (crash a dead host, down a dead link, heal an intact fabric...) is
// *ignored* — counted in fault.ignored, traced, and crucially scheduling NO
// inverse event — instead of corrupting the availability accounting. The
// explorer composes arbitrary schedules, so every such edge must be inert.

TEST(FaultInjectorTest, DuplicateCrashOfDeadHostIsIgnoredWithoutPhantomRestart) {
  core::MicroGridPlatform p(core::topologies::alphaCluster());
  fault::FaultPlan plan;
  plan.add(simpleEvent(fault::FaultKind::HostCrash, "vm3.ucsd.edu", 0.1));  // permanent
  // The duplicate carries a duration; were it applied (or its inverse kept),
  // the dead host would "restart" at t=1.2 and availability would go negative.
  plan.add(simpleEvent(fault::FaultKind::HostCrash, "vm3.ucsd.edu", 0.2, 1.0));
  fault::FaultInjector injector(p, std::move(plan));
  injector.arm();
  p.run();

  EXPECT_EQ(injector.injected(), 1);
  EXPECT_EQ(injector.ignored(), 1);
  EXPECT_EQ(p.simulator().metrics().counterValue("fault.ignored"), 1);
  EXPECT_EQ(p.simulator().metrics().counterValue("fault.host_restart"), 0);
  EXPECT_FALSE(p.hostAlive("vm3.ucsd.edu"));
  const auto reports = injector.report(10.0);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].crashes, 1);
  EXPECT_TRUE(reports[0].down_at_horizon);
  EXPECT_NEAR(reports[0].downtime_seconds, 9.9, 1e-6);  // down from 0.1 on
}

TEST(FaultInjectorTest, RestartOfLiveHostAndBrownoutOfDeadHostAreIgnored) {
  core::MicroGridPlatform p(core::topologies::alphaCluster());
  fault::FaultPlan plan;
  plan.add(simpleEvent(fault::FaultKind::HostRestart, "vm0.ucsd.edu", 0.1));
  plan.add(simpleEvent(fault::FaultKind::HostCrash, "vm3.ucsd.edu", 0.2));
  fault::FaultEvent brown = simpleEvent(fault::FaultKind::CpuBrownout, "vm3.ucsd.edu", 0.3, 1.0);
  brown.factor = 0.5;
  plan.add(brown);  // host is dead: nothing to slow down
  fault::FaultInjector injector(p, std::move(plan));
  injector.arm();
  p.run();

  EXPECT_EQ(injector.injected(), 1);  // only the crash applied
  EXPECT_EQ(injector.ignored(), 2);
  EXPECT_TRUE(p.hostAlive("vm0.ucsd.edu"));
  EXPECT_FALSE(p.hostAlive("vm3.ucsd.edu"));
}

TEST(FaultInjectorTest, SameTimestampDuplicateLinkDownFiresOnceInFileOrder) {
  core::MicroGridPlatform p(core::topologies::alphaCluster());
  const net::Topology& topo = p.network().topology();
  fault::FaultPlan plan;
  plan.add(simpleEvent(fault::FaultKind::LinkUp, "eth1", 0.05));       // already up
  plan.add(simpleEvent(fault::FaultKind::LinkDown, "eth1", 0.1));      // applies
  plan.add(simpleEvent(fault::FaultKind::LinkDown, "eth1", 0.1, 5.0)); // same t: ignored
  fault::FaultInjector injector(p, std::move(plan));
  injector.arm();
  p.run();

  EXPECT_EQ(p.simulator().metrics().counterValue("fault.link_down"), 1);
  EXPECT_EQ(injector.ignored(), 2);
  // The ignored duplicate scheduled no auto-restore: the link stays down.
  EXPECT_EQ(p.simulator().metrics().counterValue("fault.link_up"), 0);
  EXPECT_FALSE(topo.link(topo.findLink("eth1")).up);
}

TEST(FaultInjectorTest, EmptyCutPartitionAndHealOfNothingAreIgnored) {
  core::MicroGridPlatform p(core::topologies::alphaCluster());
  fault::FaultPlan plan;
  fault::FaultEvent first = simpleEvent(fault::FaultKind::Partition, "", 0.1);
  first.name = "split";
  first.nodes = {"vm0.ucsd.edu"};
  plan.add(first);
  // Same node set again: every crossing link is already down, the cut is
  // empty — ignored, and (critically) no partitions_ entry is created that a
  // later heal would "mend" by re-raising links the first partition owns.
  fault::FaultEvent again = first;
  again.name = "split2";
  again.at = 0.2;
  plan.add(again);
  fault::FaultEvent mend = simpleEvent(fault::FaultKind::Heal, "split2", 0.3);
  plan.add(mend);  // names the empty-cut partition: nothing to heal
  fault::FaultInjector injector(p, std::move(plan));
  injector.arm();
  p.run();

  const auto& m = p.simulator().metrics();
  EXPECT_EQ(m.counterValue("fault.partition"), 1);
  EXPECT_EQ(m.counterValue("fault.heal"), 0);
  EXPECT_EQ(injector.ignored(), 2);
  const net::Topology& topo = p.network().topology();
  EXPECT_FALSE(topo.link(topo.findLink("eth0")).up);  // still partitioned

  // A heal against an untouched platform is equally inert.
  core::MicroGridPlatform q(core::topologies::alphaCluster());
  fault::FaultPlan heal_nothing;
  heal_nothing.add(simpleEvent(fault::FaultKind::Heal, "", 0.1));
  fault::FaultInjector inert(q, std::move(heal_nothing));
  inert.arm();
  q.run();
  EXPECT_EQ(inert.injected(), 0);
  EXPECT_EQ(inert.ignored(), 1);
}

TEST(FaultInjectorTest, IgnoredEventsAreByteDeterministic) {
  auto run = [] {
    core::MicroGridPlatform p(core::topologies::alphaCluster());
    fault::FaultPlan plan;
    plan.add(simpleEvent(fault::FaultKind::HostCrash, "vm3.ucsd.edu", 0.1));
    plan.add(simpleEvent(fault::FaultKind::HostCrash, "vm3.ucsd.edu", 0.2, 1.0));
    plan.add(simpleEvent(fault::FaultKind::LinkUp, "eth2", 0.3));
    fault::FaultInjector injector(p, std::move(plan));
    injector.arm();
    p.run();
    return p.simulator().metrics().snapshotJson() + injector.renderReport(5.0);
  };
  EXPECT_EQ(run(), run());
}

// -------------------------------------------------- network fault detail --

TEST(NetFaults, RecomputeExactlyOncePerLinkStateChange) {
  st::Simulator sim;
  net::Topology topo;
  auto a = topo.addHost("a");
  auto b = topo.addHost("b");
  auto r = topo.addRouter("r");
  net::LinkId direct = topo.addLink("direct", a, b, 100e6, st::fromSeconds(1e-3));
  topo.addLink("backup1", a, r, 100e6, st::fromSeconds(5e-3));
  topo.addLink("backup2", r, b, 100e6, st::fromSeconds(5e-3));
  net::PacketNetwork net(sim, std::move(topo), {});
  const auto& m = sim.metrics();

  const std::int64_t r0 = m.counterValue("net.route.recomputes");
  net.setLinkUp(direct, false);
  EXPECT_EQ(m.counterValue("net.route.recomputes") - r0, 1);
  net.setLinkUp(direct, false);  // same state: a no-op
  EXPECT_EQ(m.counterValue("net.route.recomputes") - r0, 1);
  net.setLinkUp(direct, true);
  EXPECT_EQ(m.counterValue("net.route.recomputes") - r0, 2);
}

TEST(NetFaults, InFlightPacketsDroppedOnLinkDownAreCounted) {
  st::Simulator sim;
  net::Topology topo;
  auto a = topo.addHost("a");
  auto b = topo.addHost("b");
  // Slow link: by the time it fails, TCP's window fills the queue, so the
  // outage catches packets in flight.
  net::LinkId only = topo.addLink("only", a, b, 10e6, st::fromSeconds(1e-3));
  net::PacketNetwork net(sim, std::move(topo), {});
  net::HostStack sa(net, a), sb(net, b);

  const size_t kSize = 256 * 1024;
  std::vector<std::uint8_t> data(kSize, 0x5a);
  std::vector<std::uint8_t> received(kSize);
  sim.spawn("server", [&] {
    auto listener = sb.tcp().listen(80);
    auto conn = listener->accept();
    conn->recvExact(received.data(), kSize);
  });
  sim.spawn("client", [&] {
    auto conn = sa.tcp().connect(b, 80);
    conn->send(data.data(), kSize);
    conn->close();
  });
  sim.spawn("flapper", [&] {
    sim.delay(50 * st::kMillisecond);  // mid-transfer: the queue is full
    net.setLinkUp(only, false);
    sim.delay(500 * st::kMillisecond);
    net.setLinkUp(only, true);
  });
  sim.run();
  EXPECT_EQ(received, data);  // TCP recovers the dropped packets
  const auto& m = sim.metrics();
  EXPECT_GT(m.counterValue("net.packet.drop_link_down"), 0);
  // The fault-specific sub-cause never exceeds the aggregate down counter.
  EXPECT_LE(m.counterValue("net.packet.drop_link_down"),
            m.counterValue("net.packet.dropped_down"));
}

// ------------------------------------------------------- scheduler crash --

TEST(SchedulerFaults, TaskKilledMidQuantumDoesNotLeakOrStall) {
  st::Simulator sim;
  vos::CpuScheduler sched(sim, 100e6, 10 * st::kMillisecond, {1.0, 1.0, 0.0});

  // Task a computes effectively forever; a saboteur kills its process in the
  // middle of one of its quanta (a's quanta start at even multiples of 10ms).
  // The dead slot must not stall b or keep charging credit.
  sim::Process& pa = sim.spawn("a", [&] {
    const auto id = sched.addTask("a", 0.5);
    struct Guard {
      vos::CpuScheduler& s;
      vos::CpuScheduler::TaskId id;
      ~Guard() { s.removeTask(id); }
    } guard{sched, id};
    sched.computeSeconds(id, 100.0);
  });
  double wall_b = -1;
  sim.spawn("b", [&] {
    const auto id = sched.addTask("b", 0.5);
    const st::SimTime t0 = sim.now();
    sched.computeSeconds(id, 1.0);
    wall_b = st::toSeconds(sim.now() - t0);
    sched.removeTask(id);
  });
  sim.spawn("saboteur", [&] {
    sim.delay(22500 * st::kMicrosecond);  // 2.5ms into a's third quantum
    sim.killProcess(pa);
  });
  sim.run();
  // b's 1 cpu-second at fraction 0.5 takes ~2s of wall time, crash or not.
  EXPECT_NEAR(wall_b, 2.0, 0.2);
  EXPECT_LT(st::toSeconds(sim.now()), 3.0);  // and the simulation drains
}

TEST(SchedulerFaults, HostCrashLeavesCoResidentHostUnaffected) {
  // Two virtual hosts time-share one physical machine; the victim's processes
  // are torn out of the shared scheduler mid-compute when its host crashes.
  // The survivor's pace is set by its own fraction, so its wall time must
  // match a crash-free run of the same workload.
  auto survivorWall = [](bool crash) {
    core::VirtualGridConfig cfg;
    cfg.addPhysical("p0", 533e6);
    cfg.addHost("a.grid", "10.0.0.1", 200e6, 1ll << 30, "p0");
    cfg.addHost("b.grid", "10.0.0.2", 200e6, 1ll << 30, "p0");
    cfg.addRouter("hub");
    cfg.addLink("la", "a.grid", "hub", 100e6, 1e-3);
    cfg.addLink("lb", "b.grid", "hub", 100e6, 1e-3);
    core::MicroGridPlatform p(cfg);
    double wall = -1;
    p.spawnOn("a.grid", "survivor", [&](vos::HostContext& ctx) {
      const double t0 = ctx.wallTime();
      ctx.compute(200e6);  // one virtual second of work
      wall = ctx.wallTime() - t0;
    });
    p.spawnOn("b.grid", "victim", [&](vos::HostContext& ctx) {
      ctx.compute(200e6 * 20);  // far outlasts the survivor
    });
    if (crash) {
      p.simulator().scheduleAfter(st::fromSeconds(0.1),
                                  [&p] { p.crashHost("b.grid"); });
    }
    p.run();
    EXPECT_GE(wall, 0.0);
    return wall;
  };
  const double with_crash = survivorWall(true);
  const double healthy = survivorWall(false);
  EXPECT_NEAR(with_crash, healthy, healthy * 0.02);
}

// ------------------------------------------------ middleware resilience --

TEST(Resilience, RecvThrowsWhenPeerHostCrashes) {
  core::topologies::AlphaClusterParams ap;
  ap.hosts = 2;
  core::MicroGridPlatform p(core::topologies::alphaCluster(ap));
  bool threw = false;
  bool rank0_done = false;
  p.spawnOn("vm0.ucsd.edu", "rank0", [&](vos::HostContext& ctx) {
    auto comm = vmpi::Comm::init(ctx, 0, {"vm0.ucsd.edu", "vm1.ucsd.edu"});
    ctx.sleep(10.0);  // never wakes: the host crashes first
    comm->finalize();
    rank0_done = true;
  });
  p.spawnOn("vm1.ucsd.edu", "rank1", [&](vos::HostContext& ctx) {
    auto comm = vmpi::Comm::init(ctx, 1, {"vm0.ucsd.edu", "vm1.ucsd.edu"});
    char buf[8];
    try {
      comm->recv(0, 7, buf, sizeof buf);  // must not block forever
    } catch (const mg::Error&) {
      threw = true;
    }
  });
  p.simulator().scheduleAfter(st::fromSeconds(1.0),
                              [&p] { p.crashHost("vm0.ucsd.edu"); });
  p.run();
  EXPECT_TRUE(threw);
  EXPECT_FALSE(rank0_done);
}

TEST(Resilience, GramRetriesUntilGatekeeperComesUp) {
  core::topologies::AlphaClusterParams ap;
  ap.hosts = 2;
  core::MicroGridPlatform p(core::topologies::alphaCluster(ap));
  grid::ExecutableRegistry registry;
  registry.add("noop", [](grid::JobContext&) { return 0; });
  p.spawnOn("vm1.ucsd.edu", "late-gatekeeper", [&](vos::HostContext& ctx) {
    ctx.sleep(1.5);  // the gatekeeper is down when the client first submits
    grid::serveGatekeeper(ctx, registry);
  });
  grid::JobStatus done;
  p.spawnOn("vm0.ucsd.edu", "client", [&](vos::HostContext& ctx) {
    grid::GramClient client(ctx);
    grid::GramRetryPolicy pol;
    pol.attempts = 8;
    pol.backoff_seconds = 0.25;
    client.setRetryPolicy(pol);
    grid::Rsl rsl;
    rsl.set("executable", "noop");
    rsl.set("count", "1");
    done = client.wait(client.submit("vm1.ucsd.edu", rsl));
  });
  p.run();
  EXPECT_EQ(done.state, grid::JobState::Done);
  EXPECT_GT(p.simulator().metrics().counterValue("grid.gram.retries"), 0);
}

TEST(Resilience, GisTtlExpiryReplacesDeadHostOnResubmit) {
  // A permanent crash (no restart): the host's GIS record is stamped with
  // Record_Expires, so the resubmission's re-placement search stops seeing
  // it and the part moves to a surviving host.
  auto cfg = core::topologies::alphaCluster();
  core::MicroGridPlatform platform(cfg);
  grid::ExecutableRegistry registry;
  std::set<std::string> ran_on;
  registry.add("worker", [&ran_on](grid::JobContext& jc) {
    ran_on.insert(jc.os.hostname());
    jc.os.sleep(1.0);
    return 0;
  });
  core::Launcher launcher(platform, registry);
  launcher.startServices(&cfg, "Alpha4");
  core::LaunchOptions lopts;
  lopts.max_resubmits = 3;
  launcher.setLaunchOptions(lopts);

  fault::FaultPlan plan;
  plan.add(simpleEvent(fault::FaultKind::HostCrash, "vm3.ucsd.edu", 0.5));  // forever
  fault::FaultInjector injector(platform, std::move(plan));
  injector.onHostCrash([&launcher](const std::string& h) { launcher.markHostDown(h); });
  injector.arm();

  const auto result =
      launcher.run("worker", "", {{"vm3.ucsd.edu", 1}}, {}, "vm0.ucsd.edu");
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_GE(result.resubmits, 1);
  // The retry ran somewhere that is not the dead host.
  EXPECT_GT(ran_on.size(), 0u);
  EXPECT_EQ(ran_on.count("vm3.ucsd.edu"), 1u);  // first attempt started there
  bool elsewhere = false;
  for (const auto& h : ran_on) elsewhere |= h != "vm3.ucsd.edu";
  EXPECT_TRUE(elsewhere);
}

TEST(Resilience, GisSearchExcludesExpiredRecords) {
  gis::Directory dir;
  gis::Record alive(gis::Dn::parse("hn=up.grid, o=Grid"));
  alive.set("objectclass", "GridComputeResource");
  gis::Record dying(gis::Dn::parse("hn=down.grid, o=Grid"));
  dying.set("objectclass", "GridComputeResource");
  dying.set(gis::kAttrExpires, "5.0");
  dir.add(alive);
  dir.add(dying);

  const gis::Dn base = gis::Dn::parse("o=Grid");
  const gis::Filter f = gis::Filter::parse("(objectclass=GridComputeResource)");
  EXPECT_EQ(dir.search(base, gis::Scope::Subtree, f, 4.0).size(), 2u);
  EXPECT_EQ(dir.search(base, gis::Scope::Subtree, f, 5.0).size(), 1u);  // at-or-past expiry
  EXPECT_EQ(dir.search(base, gis::Scope::Subtree, f).size(), 2u);  // no horizon: no expiry
  EXPECT_TRUE(gis::Directory::expired(dying, 6.0));
  EXPECT_FALSE(gis::Directory::expired(alive, 6.0));
}

// --------------------------------------------- end-to-end crash recovery --

namespace {

struct CrashRun {
  core::LaunchResult result;
  std::int64_t crashes = 0;
  std::int64_t restarts = 0;
  std::int64_t injected = 0;
  std::string metrics_json;
  std::string report;
  std::string span_tree;
  int aborted_spans = 0;        // spans closed by crashHost's abortTrack
  int aborted_still_open = 0;   // aborted spans that somehow stayed open
  int fault_instants = 0;       // instant markers from the injector
};

/// Run a four-rank chattering job on the Alpha cluster while vm3 crashes at
/// t=1vs and restarts at t=4vs. The first attempt must fail (peers see the
/// crash instead of hanging) and a resubmission must complete the job.
CrashRun runCrashResubmitScenario() {
  mgtest::HarnessOptions hopts;
  hopts.spans = true;
  mgtest::LauncherHarness h(hopts);
  h.registry.add("chatter", [](grid::JobContext& jc) {
    auto comm = vmpi::Comm::init(jc);
    for (int i = 0; i < 30; ++i) {
      comm->context().sleep(0.1);
      double v = 1;
      comm->allreduce(&v, 1, vmpi::Op::Sum);
      if (v != comm->size()) {
        comm->finalize();
        return 1;
      }
    }
    comm->finalize();
    return 0;
  });

  fault::FaultPlan plan;
  plan.add(mgtest::crashVm3(1.0, 3.0));
  fault::FaultInjector& injector = h.armFaults(std::move(plan));

  CrashRun out;
  out.result = h.launcher.run("chatter", "", mgtest::LauncherHarness::fourRanks());
  const auto& m = h.platform.simulator().metrics();
  out.crashes = m.counterValue("fault.host_crash");
  out.restarts = m.counterValue("fault.host_restart");
  out.injected = m.counterValue("fault.injected");
  out.metrics_json = m.snapshotJson();
  out.report = injector.renderReport();
  const auto& spans = h.platform.simulator().spans();
  out.span_tree = spans.serializeTree();
  for (const auto& s : spans.spans()) {
    for (const auto& [k, v] : s.attrs) {
      if (k != "aborted") continue;
      ++out.aborted_spans;
      if (s.open()) ++out.aborted_still_open;
    }
    if (s.component == "fault.injector" && s.instant) ++out.fault_instants;
  }
  return out;
}

}  // namespace

TEST(Resilience, CrashedHostJobFailsThenResubmitsAndCompletes) {
  const CrashRun r = runCrashResubmitScenario();
  EXPECT_TRUE(r.result.ok) << r.result.error;
  EXPECT_GE(r.result.resubmits, 1);
  ASSERT_FALSE(r.result.attempt_errors.empty());
  EXPECT_FALSE(r.result.attempt_errors.front().empty());
  EXPECT_EQ(r.crashes, 1);
  EXPECT_EQ(r.restarts, 1);
  EXPECT_EQ(r.injected, 2);
  EXPECT_NE(r.report.find("vm3.ucsd.edu"), std::string::npos);
}

TEST(Resilience, HostCrashAbortsOpenSpansAndMarksThem) {
  // A crash must not leak open spans: everything in flight on the dead host
  // (vmpi recv waits, quanta, the rank span itself) is closed at crash time
  // with an `aborted` attribute, and the crash/restart pair shows up as
  // instant markers in the trace.
  const CrashRun r = runCrashResubmitScenario();
  EXPECT_GT(r.aborted_spans, 0);
  EXPECT_EQ(r.aborted_still_open, 0);
  EXPECT_EQ(r.fault_instants, 2);  // crash + restart
  EXPECT_NE(r.span_tree.find("aborted=host_crash"), std::string::npos);
}

TEST(FaultPlanTest, DegradeToZeroBandwidthIsLegal) {
  // bandwidth_mult = 0 models a blackout that keeps the link administratively
  // up: fluid flows crossing it stall until the restore. Negative multipliers
  // stay configuration errors.
  auto plan = fault::FaultPlan::fromConfig(util::Config::parse(R"(
[fault blackout]
at = 1s
kind = link_degrade
target = eth0
bandwidth_mult = 0
duration = 2s
)"));
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.events()[0].bandwidth_mult, 0.0);
  EXPECT_THROW(fault::FaultPlan::fromConfig(util::Config::parse(
                   "[fault f]\nat = 1s\nkind = link_degrade\ntarget = eth0\n"
                   "bandwidth_mult = -0.5\n")),
               ConfigError);
  EXPECT_THROW(fault::FaultPlan::fromConfig(util::Config::parse(
                   "[fault f]\nat = 1s\nkind = link_degrade\ntarget = eth0\n"
                   "latency_mult = -1\n")),
               ConfigError);
}

TEST(Resilience, FlowStallsThroughZeroBandwidthOutageAndCompletes) {
  // Regression for the zero-rate drain hazard: a fluid flow whose bottleneck
  // degrades to 0 bps mid-transfer must park (no drain event at a garbage
  // time, no division blow-up) and finish after the auto-restore — the
  // transfer just takes the outage longer.
  auto cfg = core::topologies::alphaCluster();
  core::MicroGridOptions mopts;
  mopts.netmodel = net::NetModelKind::Flow;
  core::MicroGridPlatform p(cfg, mopts);

  fault::FaultPlan plan;
  fault::FaultEvent ev;
  ev.name = "blackout";
  ev.at = 0.05;
  ev.kind = fault::FaultKind::LinkDegrade;
  ev.target = "eth0";
  ev.bandwidth_mult = 0.0;
  ev.duration = 0.1;
  plan.add(ev);
  fault::FaultInjector injector(p, std::move(plan));
  injector.arm();

  // ~0.18 s of wire at 100 Mb/s: guaranteed to straddle the outage window.
  const std::size_t kBytes = 2 << 20;
  std::size_t received = 0;
  p.spawnOn("vm0.ucsd.edu", "rx", [&](vos::HostContext& ctx) {
    auto listener = ctx.listen(80);
    auto sock = listener->accept();
    std::vector<std::uint8_t> buf(1 << 16);
    for (;;) {
      const std::size_t n = sock->recv(buf.data(), buf.size());
      if (n == 0) break;
      received += n;
    }
  });
  p.spawnOn("vm1.ucsd.edu", "tx", [&](vos::HostContext& ctx) {
    ctx.sleep(0.001);
    auto sock = ctx.connect("vm0.ucsd.edu", 80);
    std::vector<std::uint8_t> msg(kBytes, 0x5a);
    sock->send(msg.data(), msg.size());
    sock->close();
  });
  const double virtual_s = p.run();

  EXPECT_EQ(received, kBytes);
  ASSERT_NE(p.network().flows(), nullptr);
  const net::FlowNetworkStats stats = p.network().flows()->stats();
  EXPECT_GE(stats.flows_stalled, 1) << "outage never parked the transfer";
  EXPECT_EQ(stats.flows_aborted, 0);
  EXPECT_EQ(p.network().flows()->activeFlows(), 0);
  // The outage pushes completion past the no-fault duration plus the window.
  EXPECT_GT(virtual_s, 0.15 + 0.1);
  EXPECT_EQ(injector.injected(), 2);  // degrade + its restore
}

TEST(Resilience, FaultRunsAreByteDeterministic) {
  const CrashRun r1 = runCrashResubmitScenario();
  const CrashRun r2 = runCrashResubmitScenario();
  EXPECT_EQ(r1.metrics_json, r2.metrics_json);
  EXPECT_EQ(r1.span_tree, r2.span_tree);
  EXPECT_EQ(r1.report, r2.report);
  EXPECT_DOUBLE_EQ(r1.result.virtual_seconds, r2.result.virtual_seconds);
  EXPECT_EQ(r1.result.resubmits, r2.result.resubmits);
}

// ------------------------------------- NPB under faults: bit determinism --

namespace {

/// Four EP ranks on the Alpha cluster while eth1 degrades to 5% loss for a
/// window covering the final allreduce: TCP retransmits, RTO timers armed
/// and cancelled, stochastic drops. Everything observable must still be a
/// pure function of the seed.
mgtest::EpFaultRun runEpWithFaults() {
  fault::FaultPlan plan;
  plan.add(mgtest::lossyEth1());
  return mgtest::runEpUnderFaults(plan);
}

}  // namespace

TEST(Resilience, NpbEpUnderFaultsIsByteDeterministic) {
  const auto r1 = runEpWithFaults();
  const auto r2 = runEpWithFaults();
  EXPECT_EQ(r1.metrics, r2.metrics);  // full metrics snapshot, byte for byte
  ASSERT_EQ(r1.checksums.size(), 4u);
  EXPECT_EQ(r1.checksums, r2.checksums);
  // The degraded link really dropped packets, so the equality above is a
  // statement about stochastic state, not zeros.
  EXPECT_NE(r1.metrics.find("\"net.packet.dropped_loss\":"), std::string::npos);
}
