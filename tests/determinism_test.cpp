// Seed-sweep determinism: for every seed, two fresh runs of NPB EP under
// faults (a lossy link all run long plus a transient outage mid-run) must be
// byte-identical in every observable stream — metrics snapshot, trace bus,
// and the application's own checksums. The model checker's replay-restore
// construction (mc/snapshot.h) is built entirely on this property, so a
// single seed where it breaks invalidates the whole subsystem.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>

#include "fault/fault_plan.h"

#include "test_scenarios.h"

using namespace mg;

namespace {

fault::FaultPlan sweepPlan() {
  fault::FaultPlan plan;
  plan.add(mgtest::lossyEth1(0.05, 60.0));  // stochastic drops, seed-driven
  plan.add(mgtest::simpleEvent(fault::FaultKind::LinkDown, "eth2", 0.5, 0.05));
  return plan;
}

}  // namespace

TEST(Determinism, SeedSweepEpUnderFaultsIsByteReproducible) {
  const fault::FaultPlan plan = sweepPlan();
  std::set<std::string> distinct_metrics;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto a = mgtest::runEpUnderFaults(plan, seed, /*trace=*/true);
    const auto b = mgtest::runEpUnderFaults(plan, seed, /*trace=*/true);
    EXPECT_EQ(a.metrics, b.metrics) << "metrics diverged at seed " << seed;
    EXPECT_EQ(a.trace, b.trace) << "trace diverged at seed " << seed;
    ASSERT_EQ(a.checksums.size(), 4u);
    EXPECT_EQ(a.checksums, b.checksums) << "checksums diverged at seed " << seed;
    // The lossy link really engaged: determinism is a statement about
    // stochastic state, not about a run the faults never touched.
    EXPECT_NE(a.metrics.find("\"net.packet.dropped_loss\":"), std::string::npos);
    distinct_metrics.insert(a.metrics);
  }
  // The seed genuinely feeds the packet-loss RNG stream: different seeds do
  // not all collapse onto one trajectory.
  EXPECT_GT(distinct_metrics.size(), 1u);
}
