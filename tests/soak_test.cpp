// Soak/stress test for the parallel lane engine (ISSUE 5): 1000 virtual
// hosts across 20 WAN-joined campus clusters, 60 seconds of virtual time,
// link and node faults flipping throughout. Excluded from the default ctest
// run (CONFIGURATIONS soak); run with `ctest -C soak -R soak`.
//
// What it guards:
//   - no deadlock at barrier epochs (the run completes at all; the ctest
//     TIMEOUT property is the backstop),
//   - stable memory: the event arena's slot high-water mark reaches steady
//     state during warmup and stays bounded for the rest of the run,
//   - the event population fully drains once traffic stops,
//   - zero horizon violations under sustained cross-partition load + faults.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/packet_network.h"
#include "net/partition.h"
#include "net/topology.h"
#include "sim/simulator.h"

using namespace mg;
namespace st = mg::sim;

namespace {

constexpr st::SimTime kUs = st::kMicrosecond;
constexpr st::SimTime kMs = st::kMillisecond;
constexpr st::SimTime kSec = st::kSecond;

constexpr int kClusters = 20;
constexpr int kHostsPerCluster = 50;  // 20 * 50 = 1000 virtual hosts

/// 20 campus clusters (router + 50 hosts at 50us) chained by 30ms WAN links,
/// a scaled-up version of the paper's multi-site grid. The chain (not a
/// ring) keeps routes unique; every adjacent-cluster packet crosses exactly
/// one cut link.
net::Topology bigGrid() {
  net::Topology topo;
  std::vector<net::NodeId> routers;
  for (int c = 0; c < kClusters; ++c) {
    auto r = topo.addRouter("r" + std::to_string(c));
    routers.push_back(r);
    for (int i = 0; i < kHostsPerCluster; ++i) {
      auto h = topo.addHost("h" + std::to_string(c) + "_" + std::to_string(i));
      topo.addLink("l" + std::to_string(c) + "_" + std::to_string(i), h, r, 100e6, 50 * kUs,
                   256 * 1024);
    }
  }
  for (int c = 0; c + 1 < kClusters; ++c) {
    topo.addLink("wan" + std::to_string(c), routers[static_cast<std::size_t>(c)],
                 routers[static_cast<std::size_t>(c + 1)], 45e6, 30 * kMs, 1 << 20,
                 /*loss=*/0.01);
  }
  return topo;
}

}  // namespace

TEST(SoakParallel, ThousandHostsSixtySecondsUnderFaults) {
  st::Simulator sim;
  net::Topology topo = bigGrid();
  const net::PartitionPlan plan = net::planPartitions(topo, 8);
  ASSERT_EQ(plan.partitions, 8);  // 20 components folded into 8 buckets
  ASSERT_EQ(plan.cut_latency, 30 * kMs);

  net::PacketNetworkOptions nopts;
  net::PacketNetwork net(sim, std::move(topo), nopts);
  sim.configureParallel(plan.partitions + 1, /*workers=*/4,
                        std::min(nopts.host_stack_delay, plan.cut_latency));
  net.setPartitionPlan(plan);

  const auto& t = net.topology();
  std::vector<net::NodeId> hosts;
  for (net::NodeId n = 0; n < t.nodeCount(); ++n) {
    if (t.node(n).kind == net::NodeKind::Host) hosts.push_back(n);
  }
  ASSERT_EQ(hosts.size(), static_cast<std::size_t>(kClusters * kHostsPerCluster));

  // Final delivery always lands on lane 0, so one plain counter is safe.
  long delivered = 0;
  for (net::NodeId h : hosts) {
    net.attachHost(h, [&delivered](net::Packet&&) { ++delivered; });
  }

  // Every host streams a packet to a rotating peer in the adjacent cluster
  // every 500ms until the 60s mark: sustained cross-partition load on every
  // cut link. Senders live on lane 0, like the real transports.
  constexpr st::SimTime kEnd = 60 * kSec;
  constexpr st::SimTime kPeriod = 500 * kMs;
  long sent = 0;
  auto hostAt = [&hosts](int cluster, int idx) {
    return hosts[static_cast<std::size_t>(cluster * kHostsPerCluster + idx)];
  };
  std::vector<std::unique_ptr<std::function<void(int)>>> senders;
  for (int c = 0; c < kClusters; ++c) {
    for (int i = 0; i < kHostsPerCluster; ++i) {
      senders.push_back(std::make_unique<std::function<void(int)>>());
      auto* self = senders.back().get();
      *self = [&, self, c, i](int step) {
        const int dst_cluster = (c + 1 < kClusters) ? c + 1 : c - 1;
        net::Packet p;
        p.src = hostAt(c, i);
        p.dst = hostAt(dst_cluster, (i * 7 + step) % kHostsPerCluster);
        p.protocol = net::Protocol::Udp;
        p.payload.assign(static_cast<std::size_t>(120 + (i % 64)), 0x5a);
        net.send(std::move(p));
        ++sent;
        if (sim.now() + kPeriod < kEnd) {
          sim.scheduleAfter(kPeriod, [self, step] { (*self)(step + 1); });
        }
      };
      // Stagger the start so the event population ramps smoothly.
      sim.scheduleAt((c * kHostsPerCluster + i) % 500 * kMs, [self] { (*self)(0); });
    }
  }

  // Faults: WAN links flap (down 500ms every ~2s, rotating along the chain)
  // and one host per cluster crashes for a second every 5s. All mutations
  // originate on lane 0 and apply at barriers.
  for (int k = 0; k < 28; ++k) {
    const net::LinkId wan = net.topology().findLink("wan" + std::to_string(k % (kClusters - 1)));
    sim.scheduleAt((2 * k + 1) * kSec, [&net, wan] { net.setLinkUp(wan, false); });
    sim.scheduleAt((2 * k + 1) * kSec + 500 * kMs, [&net, wan] { net.setLinkUp(wan, true); });
  }
  for (int k = 1; k <= 11; ++k) {
    const net::NodeId victim = hostAt(k % kClusters, 7);
    sim.scheduleAt(k * 5 * kSec, [&net, victim] { net.setNodeUp(victim, false); });
    sim.scheduleAt(k * 5 * kSec + kSec, [&net, victim] { net.setNodeUp(victim, true); });
  }

  // Arena high-water probe: by 10s every sender chain is live and the
  // steady-state event population is established. runAtBarrier reads the
  // arena at a point where no worker is mid-phase.
  std::size_t warm_slots = 0;
  sim.scheduleAt(10 * kSec, [&] {
    sim.runAtBarrier([&] { warm_slots = sim.eventArenaSlots(); });
  });

  sim.runUntil(kEnd);
  EXPECT_EQ(sim.now(), kEnd);
  sim.run();  // drain in-flight packets past the last send

  // Steady memory: slabs only grow on demand, so the final size IS the
  // high-water mark. It must not creep past the warmed-up population —
  // growth after warmup means slots are leaking instead of recycling.
  const std::size_t final_slots = sim.eventArenaSlots();
  EXPECT_GT(warm_slots, 0u);
  EXPECT_LE(final_slots, 2 * warm_slots + 1024);

  // Everything drained, nothing deadlocked, the load was real.
  EXPECT_EQ(sim.pendingEventCount(), 0u);
  EXPECT_GT(sent, 100000L);
  EXPECT_GT(delivered, 0L);
  EXPECT_LT(delivered, sent);  // loss + faults really bit
  EXPECT_EQ(sim.metrics().counterValue("sim.parallel.horizon_violations"), 0);
  EXPECT_GT(sim.metrics().counterValue("sim.parallel.mailbox_msgs"), 0);
  EXPECT_GT(sim.metrics().counterValue("sim.parallel.barrier_ops"), 0);
  EXPECT_GT(sim.metrics().counterValue("net.packet.dropped_down"), 0);
  EXPECT_GT(sim.metrics().counterValue("net.packet.dropped_loss"), 0);
}
