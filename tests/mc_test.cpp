// Model-checking subsystem tests: snapshot/restore by deterministic replay,
// the fault-schedule explorer (enumeration, causal reduction, state-hash
// pruning, budget, spec parsing), and the invariant surface. The seeded
// mutation check lives in mc_mutation_test.cpp — it needs MG_MC_MUTATION set
// before the injector caches the flag, so it runs in its own process.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "fault/fault_plan.h"
#include "mc/explorer.h"
#include "mc/invariants.h"
#include "mc/scenario.h"
#include "mc/snapshot.h"
#include "util/config.h"
#include "util/error.h"

#include "test_scenarios.h"

using namespace mg;

namespace {

fault::FaultPlan outagePlan() {
  fault::FaultPlan plan;
  plan.add(mgtest::simpleEvent(fault::FaultKind::LinkDown, "eth1", 0.01, 0.02));
  return plan;
}

/// Candidate menu sized so assignments alone reach 5 * 5 * 4 = 100 schedules
/// (shared times add same-time orderings on top). All three faults leave the
/// vm1 -> vm0 transfer completable: transient link faults recover through
/// TCP retransmission, and vm3 is a bystander.
std::vector<mc::CandidateFault> transferCandidates() {
  std::vector<mc::CandidateFault> out;

  mc::CandidateFault drop;
  drop.event = mgtest::simpleEvent(fault::FaultKind::LinkDown, "eth1", 0.01, 0.02);
  drop.event.name = "drop-eth1";
  drop.times = {0.005, 0.01, 0.015, 0.02};
  out.push_back(drop);

  mc::CandidateFault lossy;
  lossy.event = mgtest::simpleEvent(fault::FaultKind::LinkDegrade, "eth0", 0.01, 0.03);
  lossy.event.name = "lossy-eth0";
  lossy.event.loss = 0.05;
  lossy.times = {0.005, 0.01, 0.015, 0.02};
  out.push_back(lossy);

  mc::CandidateFault crash;
  crash.event = mgtest::simpleEvent(fault::FaultKind::HostCrash, "vm3.ucsd.edu", 0.01, 0.05);
  crash.event.name = "crash-vm3";
  crash.times = {0.005, 0.01, 0.015};
  out.push_back(crash);

  // A mandatory late decision point, well after the transfer is done and the
  // bystander crash has healed: schedules whose prefixes differ only in the
  // crash timing have converged to byte-identical state by t=0.5, so the
  // state-hash memo prunes their tails (what the reduction test asserts).
  mc::CandidateFault late;
  late.event = mgtest::simpleEvent(fault::FaultKind::LinkDown, "eth3", 0.5, 0.01);
  late.event.name = "late-eth3";
  late.times = {0.5};
  late.optional = false;
  out.push_back(late);

  return out;
}

}  // namespace

// ---------------------------------------------------------------- snapshot --

TEST(McSnapshot, RoundTripRestoresByteIdenticalState) {
  const auto factory = mc::transferScenario();
  const fault::FaultPlan plan = outagePlan();

  auto run = factory(plan);
  const double t = run->runTo(0.015);  // mid-transfer, outage in progress
  const mc::Snapshot snap = mc::capture(*run, t, plan);
  EXPECT_EQ(snap.digest, run->digest());

  auto restored = mc::restore(factory, snap);
  EXPECT_EQ(restored->digest(), snap.digest);

  // The restored instance is a full replacement, not just digest-equal at
  // the pause point: driven to the end, both runs land on the same state.
  run->runToEnd();
  restored->runToEnd();
  EXPECT_EQ(run->digest(), restored->digest());
  EXPECT_EQ(run->transcript(), restored->transcript());
  EXPECT_EQ(run->units_completed(), 1);
  EXPECT_EQ(restored->units_completed(), 1);
}

TEST(McSnapshot, FreshRunsFromEqualPlansAreByteIdentical) {
  const auto factory = mc::transferScenario();
  const fault::FaultPlan plan = outagePlan();
  auto a = factory(plan);
  auto b = factory(plan);
  a->runToEnd();
  b->runToEnd();
  EXPECT_EQ(a->digest(), b->digest());
  EXPECT_EQ(a->transcript(), b->transcript());
}

TEST(McSnapshot, DigestMismatchOnRestoreThrowsStateError) {
  const auto factory = mc::transferScenario();
  const fault::FaultPlan plan = outagePlan();
  auto run = factory(plan);
  const double t = run->runTo(0.015);
  mc::Snapshot snap = mc::capture(*run, t, plan);
  snap.digest ^= 1;  // impersonate a factory that is not a pure function
  try {
    mc::restore(factory, snap);
    FAIL() << "tampered snapshot restored cleanly";
  } catch (const StateError& e) {
    EXPECT_NE(std::string(e.what()).find("diverged"), std::string::npos) << e.what();
  }
}

TEST(McSnapshot, DigestChangesAsTheRunProgresses) {
  const auto factory = mc::transferScenario();
  auto run = factory(fault::FaultPlan{});
  run->runTo(0.005);
  const std::uint64_t early = run->digest();
  run->runToEnd();
  EXPECT_NE(early, run->digest());
}

// -------------------------------------------------------------- invariants --

TEST(McInvariants, CleanAndFaultedTransfersHoldEveryInvariant) {
  const auto factory = mc::transferScenario();
  for (const fault::FaultPlan& plan : {fault::FaultPlan{}, outagePlan()}) {
    auto run = factory(plan);
    run->runToEnd();
    const auto vs = mc::checkInvariants(*run);
    EXPECT_TRUE(vs.empty()) << mc::renderViolations(vs);
  }
}

TEST(McInvariants, LostWorkIsReportedAsViolation) {
  const auto factory = mc::transferScenario();
  auto run = factory(fault::FaultPlan{});
  // Sabotage the accounting rather than the simulator: claim two units were
  // expected. The checker must flag the missing one.
  run->units_expected = 2;
  run->runToEnd();
  const auto vs = mc::checkInvariants(*run);
  ASSERT_FALSE(vs.empty());
  EXPECT_EQ(vs[0].invariant, "workload.lost");
  EXPECT_NE(mc::renderViolations(vs).find("workload.lost"), std::string::npos);
}

// ---------------------------------------------------------------- explorer --

TEST(McExplorer, EnumeratesOverHundredSchedulesDeterministically) {
  mc::ExploreOptions opts;
  auto once = [&] {
    mc::Explorer ex(mc::transferScenario(), transferCandidates(), opts);
    return ex.explore();
  };
  const mc::ExploreResult a = once();
  EXPECT_GE(a.stats.enumerated, 100);
  EXPECT_GT(a.stats.runs, 0);
  EXPECT_EQ(a.stats.violations, 0);
  EXPECT_FALSE(a.violation_found);
  EXPECT_EQ(static_cast<std::int64_t>(a.branch_log.size()), a.stats.enumerated);

  // The explorer's own determinism gate: a second exploration produces a
  // byte-identical branch log, pruning decisions included.
  const mc::ExploreResult b = once();
  EXPECT_EQ(a.branch_log, b.branch_log);
  EXPECT_EQ(a.stats.enumerated, b.stats.enumerated);
  EXPECT_EQ(a.stats.pruned_hash, b.stats.pruned_hash);
  EXPECT_EQ(a.stats.pruned_causal, b.stats.pruned_causal);
}

TEST(McExplorer, ReductionsPruneWithoutChangingTheVerdict) {
  auto explore = [](bool hash, bool causal) {
    mc::ExploreOptions opts;
    opts.hash_pruning = hash;
    opts.causal_reduction = causal;
    mc::Explorer ex(mc::transferScenario(), transferCandidates(), opts);
    return ex.explore();
  };
  const mc::ExploreResult reduced = explore(true, true);
  const mc::ExploreResult full = explore(false, false);
  // Soundness: pruning must never manufacture or hide a violation.
  EXPECT_EQ(reduced.stats.violations, 0);
  EXPECT_EQ(full.stats.violations, 0);
  // The reductions actually bite on this menu (shared times, a bystander
  // crash independent of both link faults).
  EXPECT_GT(reduced.stats.pruned_hash, 0);
  EXPECT_GT(reduced.stats.pruned_causal, 0);
  EXPECT_EQ(full.stats.pruned_hash, 0);
  EXPECT_EQ(full.stats.pruned_causal, 0);
  // Without causal reduction every ordering is enumerated separately.
  EXPECT_GE(full.stats.enumerated, reduced.stats.enumerated);
  // Hash pruning only truncates replays; every enumerated schedule of the
  // reduced run still appears in its branch log.
  EXPECT_EQ(static_cast<std::int64_t>(reduced.branch_log.size()), reduced.stats.enumerated);
}

TEST(McExplorer, BudgetCapsEnumeration) {
  mc::ExploreOptions opts;
  opts.budget = 7;
  mc::Explorer ex(mc::transferScenario(), transferCandidates(), opts);
  const mc::ExploreResult r = ex.explore();
  EXPECT_LE(r.stats.enumerated, 7);
}

TEST(McExplorer, RejectsNegativeCandidateTimes) {
  auto cands = transferCandidates();
  cands[0].times.push_back(-0.5);
  EXPECT_THROW(mc::Explorer(mc::transferScenario(), cands), Error);
}

// --------------------------------------------------------------- spec dialect

TEST(McExplorerSpec, ParsesOptionsAndCandidates) {
  const auto spec = mc::Explorer::parseSpec(util::Config::parse(R"(
[explore]
budget = 50
hash_pruning = false
causal_reduction = true

[candidate crash]
at = 1s
kind = host_crash
target = vm3.ucsd.edu
duration = 2s
times = 0.5s, 1s, 1.5s
optional = false

[candidate drop]
at = 0.3s
kind = link_down
target = eth1
duration = 100ms
)"));
  EXPECT_EQ(spec.options.budget, 50);
  EXPECT_FALSE(spec.options.hash_pruning);
  EXPECT_TRUE(spec.options.causal_reduction);
  ASSERT_EQ(spec.candidates.size(), 2u);
  EXPECT_EQ(spec.candidates[0].event.name, "crash");
  EXPECT_EQ(spec.candidates[0].event.kind, fault::FaultKind::HostCrash);
  EXPECT_FALSE(spec.candidates[0].optional);
  ASSERT_EQ(spec.candidates[0].times.size(), 3u);
  EXPECT_DOUBLE_EQ(spec.candidates[0].times[1], 1.0);
  // No `times` key: left empty here; the Explorer constructor collapses an
  // empty menu to the nominal `at`.
  EXPECT_TRUE(spec.candidates[1].optional);
  EXPECT_TRUE(spec.candidates[1].times.empty());
  EXPECT_DOUBLE_EQ(spec.candidates[1].event.at, 0.3);
}

TEST(McExplorerSpec, RejectsMalformedSpecs) {
  auto parse = [](const char* text) {
    return mc::Explorer::parseSpec(util::Config::parse(text));
  };
  // No candidates at all.
  EXPECT_THROW(parse("[explore]\nbudget = 5\n"), ConfigError);
  // Unknown [explore] key.
  EXPECT_THROW(parse("[explore]\nbudgett = 5\n"
                     "[candidate c]\nat = 1s\nkind = link_down\ntarget = eth0\n"),
               ConfigError);
  // Unknown candidate key (same policy as [fault ...] sections).
  EXPECT_THROW(parse("[candidate c]\nat = 1s\nkind = link_down\ntarget = eth0\ntimess = 1s\n"),
               ConfigError);
  // Duplicate candidate names would make branch signatures ambiguous.
  EXPECT_THROW(parse("[candidate c]\nat = 1s\nkind = link_down\ntarget = eth0\n"
                     "[candidate c]\nat = 2s\nkind = link_down\ntarget = eth1\n"),
               ConfigError);
}
