// Tests for the network substrate: topology/routing, the packet-level
// simulator, TCP and UDP transports, and the flow-level reference model.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "net/flow_network.h"
#include "net/host_stack.h"
#include "net/packet_network.h"
#include "net/tcp.h"
#include "net/topology.h"
#include "net/udp.h"
#include "sim/simulator.h"
#include "util/config.h"

using namespace mg::net;
using mg::sim::SimTime;
using mg::sim::Simulator;
namespace st = mg::sim;

// ---------------------------------------------------------------- fixture --

namespace {

/// Two hosts joined by one 100 Mbps / 0.1 ms Ethernet-like link.
struct TwoHostNet {
  Simulator sim;
  NodeId a, b;
  std::unique_ptr<PacketNetwork> net;
  std::unique_ptr<HostStack> stack_a, stack_b;

  explicit TwoHostNet(double bw = 100e6, SimTime lat = st::fromSeconds(0.1e-3),
                      double loss = 0.0, PacketNetworkOptions opts = {}) {
    Topology topo;
    a = topo.addHost("a");
    b = topo.addHost("b");
    topo.addLink("l", a, b, bw, lat, 256 * 1024, loss);
    net = std::make_unique<PacketNetwork>(sim, std::move(topo), opts);
    stack_a = std::make_unique<HostStack>(*net, a);
    stack_b = std::make_unique<HostStack>(*net, b);
  }
};

std::vector<std::uint8_t> patternBytes(size_t n, std::uint8_t salt = 0) {
  std::vector<std::uint8_t> v(n);
  for (size_t i = 0; i < n; ++i) v[i] = static_cast<std::uint8_t>((i * 131 + salt) & 0xff);
  return v;
}

}  // namespace

// --------------------------------------------------------------- topology --

TEST(Topology, AddAndFind) {
  Topology t;
  NodeId h = t.addHost("h0");
  NodeId r = t.addRouter("r0");
  LinkId l = t.addLink("l0", h, r, 100e6, 1000);
  EXPECT_EQ(t.nodeCount(), 2);
  EXPECT_EQ(t.linkCount(), 1);
  EXPECT_EQ(t.findNode("h0"), h);
  EXPECT_EQ(t.findNode("nope"), kNoNode);
  EXPECT_EQ(t.findLink("l0"), l);
  EXPECT_EQ(t.node(r).kind, NodeKind::Router);
  EXPECT_EQ(t.peer(l, h), r);
  EXPECT_EQ(t.peer(l, r), h);
}

TEST(Topology, RejectsBadInput) {
  Topology t;
  NodeId h = t.addHost("h");
  EXPECT_THROW(t.addHost("h"), mg::ConfigError);
  EXPECT_THROW(t.addLink("l", h, h, 100e6, 0), mg::ConfigError);
  EXPECT_THROW(t.addLink("l", h, 99, 100e6, 0), mg::ConfigError);
  NodeId g = t.addHost("g");
  EXPECT_THROW(t.addLink("l", h, g, 0, 0), mg::ConfigError);
  EXPECT_THROW(t.addLink("l", h, g, 100e6, -1), mg::ConfigError);
  EXPECT_THROW(t.addLink("l", h, g, 100e6, 0, 1024, 1.5), mg::ConfigError);
}

TEST(Topology, FromConfig) {
  auto cfg = mg::util::Config::parse(R"(
[node h0]
[node h1]
[node r0]
kind = router
[link l0]
a = h0
b = r0
bandwidth = 100Mbps
latency = 0.1ms
[link l1]
a = r0
b = h1
bandwidth = 622Mbps
latency = 2ms
queue = 512KB
loss = 0.01
)");
  Topology t = Topology::fromConfig(cfg);
  EXPECT_EQ(t.nodeCount(), 3);
  EXPECT_EQ(t.linkCount(), 2);
  EXPECT_EQ(t.node(t.findNode("r0")).kind, NodeKind::Router);
  const Link& l1 = t.link(t.findLink("l1"));
  EXPECT_DOUBLE_EQ(l1.bandwidth_bps, 622e6);
  EXPECT_EQ(l1.latency, st::fromSeconds(2e-3));
  EXPECT_EQ(l1.queue_bytes, 512 * 1024);
  EXPECT_DOUBLE_EQ(l1.loss_rate, 0.01);
}

TEST(Topology, FromConfigUnknownNodeThrows) {
  auto cfg = mg::util::Config::parse("[link l]\na = x\nb = y\nbandwidth = 1Mbps\nlatency = 1ms\n");
  EXPECT_THROW(Topology::fromConfig(cfg), mg::ConfigError);
}

// ---------------------------------------------------------------- routing --

TEST(Routing, LineTopologyPath) {
  Topology t;
  NodeId n0 = t.addHost("n0");
  NodeId r = t.addRouter("r");
  NodeId n1 = t.addHost("n1");
  LinkId l0 = t.addLink("l0", n0, r, 100e6, 1000);
  LinkId l1 = t.addLink("l1", r, n1, 100e6, 1000);
  RoutingTable rt(t);
  EXPECT_EQ(rt.path(n0, n1), (std::vector<LinkId>{l0, l1}));
  EXPECT_EQ(rt.path(n1, n0), (std::vector<LinkId>{l1, l0}));
  EXPECT_EQ(rt.nextLink(n0, n1), l0);
  EXPECT_TRUE(rt.path(n0, n0).empty());
}

TEST(Routing, PrefersLowerLatencyPath) {
  Topology t;
  NodeId s = t.addHost("s");
  NodeId d = t.addHost("d");
  NodeId r1 = t.addRouter("r1");
  NodeId r2 = t.addRouter("r2");
  // Slow path s-r1-d (10ms links), fast path s-r2-d (1ms links).
  t.addLink("s1", s, r1, 100e6, st::fromSeconds(10e-3));
  t.addLink("d1", r1, d, 100e6, st::fromSeconds(10e-3));
  LinkId f1 = t.addLink("s2", s, r2, 100e6, st::fromSeconds(1e-3));
  LinkId f2 = t.addLink("d2", r2, d, 100e6, st::fromSeconds(1e-3));
  RoutingTable rt(t);
  EXPECT_EQ(rt.path(s, d), (std::vector<LinkId>{f1, f2}));
  EXPECT_EQ(rt.pathLatency(t, s, d), st::fromSeconds(2e-3));
}

TEST(Routing, BottleneckBandwidth) {
  Topology t;
  NodeId a = t.addHost("a");
  NodeId r = t.addRouter("r");
  NodeId b = t.addHost("b");
  t.addLink("fast", a, r, 622e6, 1000);
  t.addLink("slow", r, b, 10e6, 1000);
  RoutingTable rt(t);
  EXPECT_DOUBLE_EQ(rt.bottleneckBandwidth(t, a, b), 10e6);
}

TEST(Routing, UnreachableNodes) {
  Topology t;
  NodeId a = t.addHost("a");
  NodeId b = t.addHost("b");  // no link
  RoutingTable rt(t);
  EXPECT_EQ(rt.nextLink(a, b), kNoLink);
  EXPECT_TRUE(rt.path(a, b).empty());
  EXPECT_EQ(rt.pathLatency(t, a, b), -1);
  EXPECT_DOUBLE_EQ(rt.bottleneckBandwidth(t, a, b), 0.0);
}

TEST(Routing, RecomputeAfterLinkDown) {
  Topology t;
  NodeId a = t.addHost("a");
  NodeId b = t.addHost("b");
  NodeId r = t.addRouter("r");
  LinkId direct = t.addLink("direct", a, b, 100e6, st::fromSeconds(1e-3));
  LinkId via1 = t.addLink("via1", a, r, 100e6, st::fromSeconds(5e-3));
  LinkId via2 = t.addLink("via2", r, b, 100e6, st::fromSeconds(5e-3));
  RoutingTable rt(t);
  EXPECT_EQ(rt.path(a, b), (std::vector<LinkId>{direct}));
  t.mutableLink(direct).up = false;
  rt.recompute(t);
  EXPECT_EQ(rt.path(a, b), (std::vector<LinkId>{via1, via2}));
}

// ---------------------------------------------------------- packet network --

TEST(PacketNetwork, DeliversWithExpectedTiming) {
  Simulator sim;
  Topology topo;
  NodeId a = topo.addHost("a");
  NodeId b = topo.addHost("b");
  topo.addLink("l", a, b, 100e6, st::fromSeconds(0.1e-3));
  PacketNetworkOptions opts;
  PacketNetwork net(sim, std::move(topo), opts);
  SimTime delivered_at = -1;
  net.attachHost(b, [&](Packet&&) { delivered_at = sim.now(); });

  Packet p;
  p.src = a;
  p.dst = b;
  p.protocol = Protocol::Udp;
  p.payload = patternBytes(1000);
  const SimTime tx = st::fromSeconds(p.wireBytes() * 8.0 / 100e6);
  sim.spawn("send", [&] { net.send(std::move(p)); });
  sim.run();
  const SimTime expected = opts.host_stack_delay + tx + st::fromSeconds(0.1e-3) + opts.host_stack_delay;
  EXPECT_NEAR(static_cast<double>(delivered_at), static_cast<double>(expected), 1000.0);
  EXPECT_EQ(net.stats().packets_delivered, 1);
  EXPECT_EQ(net.stats().bytes_delivered, 1000);
}

TEST(PacketNetwork, MultiHopForwardsThroughRouter) {
  Simulator sim;
  Topology topo;
  NodeId a = topo.addHost("a");
  NodeId r = topo.addRouter("r");
  NodeId b = topo.addHost("b");
  topo.addLink("l0", a, r, 100e6, st::fromSeconds(1e-3));
  topo.addLink("l1", r, b, 100e6, st::fromSeconds(1e-3));
  PacketNetwork net(sim, std::move(topo), {});
  bool delivered = false;
  net.attachHost(b, [&](Packet&&) { delivered = true; });
  Packet p;
  p.src = a;
  p.dst = b;
  p.payload = patternBytes(100);
  net.send(std::move(p));
  sim.run();
  EXPECT_TRUE(delivered);
  // Router latency: > 2ms total propagation.
  EXPECT_GT(sim.now(), st::fromSeconds(2e-3));
}

TEST(PacketNetwork, QueueOverflowDrops) {
  Simulator sim;
  Topology topo;
  NodeId a = topo.addHost("a");
  NodeId b = topo.addHost("b");
  // Tiny queue: 3 KB holds just two 1500 B packets.
  topo.addLink("l", a, b, 1e6, st::fromSeconds(1e-3), 3000);
  PacketNetwork net(sim, std::move(topo), {});
  int delivered = 0;
  net.attachHost(b, [&](Packet&&) { ++delivered; });
  for (int i = 0; i < 10; ++i) {
    Packet p;
    p.src = a;
    p.dst = b;
    p.payload = patternBytes(1400);
    net.send(std::move(p));
  }
  sim.run();
  EXPECT_GT(net.stats().packets_dropped_queue, 0);
  EXPECT_EQ(delivered + net.stats().packets_dropped_queue, 10);
}

TEST(PacketNetwork, RandomLossIsDeterministicPerSeed) {
  auto countDelivered = [](std::uint64_t seed) {
    Simulator sim;
    Topology topo;
    NodeId a = topo.addHost("a");
    NodeId b = topo.addHost("b");
    topo.addLink("l", a, b, 100e6, 1000, 256 * 1024, 0.3);
    PacketNetworkOptions opts;
    opts.seed = seed;
    PacketNetwork net(sim, std::move(topo), opts);
    int delivered = 0;
    net.attachHost(b, [&](Packet&&) { ++delivered; });
    for (int i = 0; i < 200; ++i) {
      Packet p;
      p.src = a;
      p.dst = b;
      p.payload = patternBytes(100);
      net.send(std::move(p));
    }
    sim.run();
    return delivered;
  };
  int d1 = countDelivered(1);
  EXPECT_EQ(d1, countDelivered(1));
  EXPECT_GT(d1, 100);  // ~140 expected
  EXPECT_LT(d1, 180);
}

TEST(PacketNetwork, LinkDownDropsAndUnreachable) {
  Simulator sim;
  Topology topo;
  NodeId a = topo.addHost("a");
  NodeId b = topo.addHost("b");
  LinkId l = topo.addLink("l", a, b, 100e6, 1000);
  PacketNetwork net(sim, std::move(topo), {});
  int delivered = 0;
  net.attachHost(b, [&](Packet&&) { ++delivered; });
  net.setLinkUp(l, false);
  Packet p;
  p.src = a;
  p.dst = b;
  p.payload = patternBytes(10);
  net.send(std::move(p));
  sim.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(net.stats().packets_dropped_down, 1);
}

TEST(PacketNetwork, StatsBreakOutDropCausesAndRouteRecomputes) {
  Simulator sim;
  Topology topo;
  NodeId a = topo.addHost("a");
  NodeId b = topo.addHost("b");
  // 1 kb/s: a small packet spends ~0.4 s on the wire, leaving a wide window
  // to yank the link or the node mid-flight.
  LinkId l = topo.addLink("l", a, b, 1000.0, 1000);
  PacketNetwork net(sim, std::move(topo), {});
  net.attachHost(b, [](Packet&&) {});
  // Only topology *changes* recompute routes; construction is not counted.
  EXPECT_EQ(net.stats().route_recomputes, 0);

  auto sendOne = [&] {
    Packet p;
    p.src = a;
    p.dst = b;
    p.payload = patternBytes(10);
    net.send(std::move(p));
  };

  // The link dies while the packet is on the wire: dropped at transmit
  // completion, attributed to link_down.
  sendOne();
  sim.scheduleAt(st::fromSeconds(0.05), [&] { net.setLinkUp(l, false); });  // recompute #1
  sim.run();
  EXPECT_EQ(net.stats().packets_dropped_link_down, 1);
  EXPECT_EQ(net.stats().packets_dropped_node_down, 0);

  // The destination crashes while the packet is mid-flight: it crosses the
  // (healthy) wire and is blackholed at delivery, attributed to node_down.
  net.setLinkUp(l, true);  // recompute #2
  sendOne();
  sim.scheduleAt(sim.now() + st::fromSeconds(0.05), [&] { net.setNodeUp(b, false); });  // recompute #3
  sim.run();
  EXPECT_EQ(net.stats().packets_dropped_link_down, 1);
  EXPECT_EQ(net.stats().packets_dropped_node_down, 1);
  EXPECT_EQ(net.stats().route_recomputes, 3);
  // The cause-specific counters partition the aggregate down-drop count.
  EXPECT_EQ(net.stats().packets_dropped_down, 2);
}

TEST(PacketNetwork, TimeScaleStretchesKernelTime) {
  auto endTime = [](double scale) {
    Simulator sim;
    Topology topo;
    NodeId a = topo.addHost("a");
    NodeId b = topo.addHost("b");
    topo.addLink("l", a, b, 100e6, st::fromSeconds(1e-3));
    PacketNetworkOptions opts;
    opts.time_scale = scale;
    PacketNetwork net(sim, std::move(topo), opts);
    net.attachHost(b, [](Packet&&) {});
    Packet p;
    p.src = a;
    p.dst = b;
    p.payload = patternBytes(100);
    net.send(std::move(p));
    return sim.run();
  };
  const double t1 = static_cast<double>(endTime(1.0));
  const double t4 = static_cast<double>(endTime(4.0));
  EXPECT_NEAR(t4 / t1, 4.0, 0.01);
}

// --------------------------------------------------------------------- tcp --

TEST(Tcp, ConnectAcceptEcho) {
  TwoHostNet f;
  std::string got;
  f.sim.spawn("server", [&] {
    auto listener = f.stack_b->tcp().listen(80);
    auto conn = listener->accept();
    char buf[64];
    size_t n = conn->recv(buf, sizeof buf);
    conn->send(buf, n);  // echo
    conn->close();
  });
  f.sim.spawn("client", [&] {
    auto conn = f.stack_a->tcp().connect(f.b, 80);
    const char msg[] = "hello grid";
    conn->send(msg, sizeof msg - 1);
    char buf[64];
    conn->recvExact(buf, sizeof msg - 1);
    got.assign(buf, sizeof msg - 1);
    conn->close();
  });
  f.sim.run();
  EXPECT_EQ(got, "hello grid");
}

TEST(Tcp, LargeTransferIntegrity) {
  TwoHostNet f;
  const size_t kSize = 1 << 20;
  auto data = patternBytes(kSize, 7);
  std::vector<std::uint8_t> received;
  f.sim.spawn("server", [&] {
    auto listener = f.stack_b->tcp().listen(80);
    auto conn = listener->accept();
    received.resize(kSize);
    conn->recvExact(received.data(), kSize);
  });
  f.sim.spawn("client", [&] {
    auto conn = f.stack_a->tcp().connect(f.b, 80);
    conn->send(data.data(), data.size());
    conn->close();
  });
  f.sim.run();
  EXPECT_EQ(received, data);
}

TEST(Tcp, ThroughputApproachesLinkEfficiency) {
  TwoHostNet f;  // 100 Mbps
  const size_t kSize = 4 << 20;
  SimTime start = 0, end = 0;
  f.sim.spawn("server", [&] {
    auto listener = f.stack_b->tcp().listen(80);
    auto conn = listener->accept();
    std::vector<std::uint8_t> sink(kSize);
    start = f.sim.now();
    conn->recvExact(sink.data(), kSize);
    end = f.sim.now();
  });
  f.sim.spawn("client", [&] {
    auto conn = f.stack_a->tcp().connect(f.b, 80);
    auto data = patternBytes(1 << 16);
    for (size_t sent = 0; sent < kSize; sent += data.size()) conn->send(data.data(), data.size());
    conn->close();
  });
  f.sim.run();
  const double seconds = st::toSeconds(end - start);
  const double mbps = kSize * 8.0 / seconds / 1e6;
  // Ethernet+IP+TCP efficiency bound is ~94.9 Mbps of payload on 100 Mbps.
  EXPECT_GT(mbps, 88.0);
  EXPECT_LT(mbps, 95.0);
}

TEST(Tcp, SurvivesRandomLoss) {
  TwoHostNet f(100e6, st::fromSeconds(0.5e-3), /*loss=*/0.02);
  const size_t kSize = 256 * 1024;
  auto data = patternBytes(kSize, 3);
  std::vector<std::uint8_t> received;
  std::shared_ptr<TcpConnection> client_conn;
  f.sim.spawn("server", [&] {
    auto listener = f.stack_b->tcp().listen(80);
    auto conn = listener->accept();
    received.resize(kSize);
    conn->recvExact(received.data(), kSize);
  });
  f.sim.spawn("client", [&] {
    client_conn = f.stack_a->tcp().connect(f.b, 80);
    client_conn->send(data.data(), data.size());
    client_conn->close();
  });
  f.sim.run();
  EXPECT_EQ(received, data);
  // Read after run(): send() returns when bytes are buffered, so the
  // retransmissions happen after the app-level calls complete.
  ASSERT_NE(client_conn, nullptr);
  EXPECT_GT(client_conn->retransmits(), 0);
}

TEST(Tcp, ConnectionRefusedWhenNoListener) {
  TwoHostNet f;
  bool refused = false;
  f.sim.spawn("client", [&] {
    try {
      f.stack_a->tcp().connect(f.b, 9999);
    } catch (const ConnectionRefused&) {
      refused = true;
    }
  });
  f.sim.run();
  EXPECT_TRUE(refused);
}

TEST(Tcp, EofAfterPeerClose) {
  TwoHostNet f;
  size_t eof_result = 99;
  f.sim.spawn("server", [&] {
    auto listener = f.stack_b->tcp().listen(80);
    auto conn = listener->accept();
    const char msg[] = "bye";
    conn->send(msg, 3);
    conn->close();
  });
  f.sim.spawn("client", [&] {
    auto conn = f.stack_a->tcp().connect(f.b, 80);
    char buf[16];
    conn->recvExact(buf, 3);
    eof_result = conn->recv(buf, sizeof buf);
  });
  f.sim.run();
  EXPECT_EQ(eof_result, 0u);
}

TEST(Tcp, RecvExactThrowsOnEarlyClose) {
  TwoHostNet f;
  bool threw = false;
  f.sim.spawn("server", [&] {
    auto listener = f.stack_b->tcp().listen(80);
    auto conn = listener->accept();
    const char msg[] = "xx";
    conn->send(msg, 2);
    conn->close();
  });
  f.sim.spawn("client", [&] {
    auto conn = f.stack_a->tcp().connect(f.b, 80);
    char buf[10];
    try {
      conn->recvExact(buf, 10);
    } catch (const ConnectionReset&) {
      threw = true;
    }
  });
  f.sim.run();
  EXPECT_TRUE(threw);
}

TEST(Tcp, FlowControlWithSlowReader) {
  TwoHostNet f;
  const size_t kSize = 3 << 20;  // 3 MB > 1 MB recv buffer
  size_t total = 0;
  f.sim.spawn("server", [&] {
    auto listener = f.stack_b->tcp().listen(80);
    auto conn = listener->accept();
    std::vector<std::uint8_t> buf(64 * 1024);
    for (;;) {
      f.sim.delay(20 * st::kMillisecond);  // slow consumer
      size_t n = conn->recv(buf.data(), buf.size());
      if (n == 0) break;
      total += n;
    }
  });
  f.sim.spawn("client", [&] {
    auto conn = f.stack_a->tcp().connect(f.b, 80);
    auto data = patternBytes(1 << 16);
    for (size_t sent = 0; sent < kSize; sent += data.size()) conn->send(data.data(), data.size());
    conn->close();
  });
  f.sim.run();
  EXPECT_EQ(total, kSize);
}

TEST(Tcp, BidirectionalSimultaneousTransfer) {
  TwoHostNet f;
  const size_t kSize = 200 * 1024;
  std::vector<std::uint8_t> got_a, got_b;
  f.sim.spawn("server", [&] {
    auto listener = f.stack_b->tcp().listen(80);
    auto conn = listener->accept();
    auto out = patternBytes(kSize, 1);
    got_b.resize(kSize);
    f.sim.spawn("server-writer", [conn, out, &f] {
      auto copy = out;
      conn->send(copy.data(), copy.size());
      (void)f;
    });
    conn->recvExact(got_b.data(), kSize);
  });
  f.sim.spawn("client", [&] {
    auto conn = f.stack_a->tcp().connect(f.b, 80);
    auto out = patternBytes(kSize, 2);
    f.sim.spawn("client-writer", [conn, out] {
      auto copy = out;
      conn->send(copy.data(), copy.size());
    });
    got_a.resize(kSize);
    conn->recvExact(got_a.data(), kSize);
  });
  f.sim.run();
  EXPECT_EQ(got_a, patternBytes(kSize, 1));
  EXPECT_EQ(got_b, patternBytes(kSize, 2));
}

TEST(Tcp, MultipleConnectionsShareLink) {
  TwoHostNet f;
  const size_t kSize = 512 * 1024;
  int done = 0;
  f.sim.spawn("server", [&] {
    auto listener = f.stack_b->tcp().listen(80);
    for (int i = 0; i < 3; ++i) {
      auto conn = listener->accept();
      f.sim.spawn("handler" + std::to_string(i), [conn, &done] {
        std::vector<std::uint8_t> sink(kSize);
        conn->recvExact(sink.data(), kSize);
        ++done;
      });
    }
  });
  for (int c = 0; c < 3; ++c) {
    f.sim.spawn("client" + std::to_string(c), [&, c] {
      f.sim.delay(c * st::kMillisecond);
      auto conn = f.stack_a->tcp().connect(f.b, 80);
      auto data = patternBytes(kSize, static_cast<std::uint8_t>(c));
      conn->send(data.data(), data.size());
      conn->close();
    });
  }
  f.sim.run();
  EXPECT_EQ(done, 3);
}

TEST(Tcp, SendAfterCloseThrows) {
  TwoHostNet f;
  bool threw = false;
  f.sim.spawn("server", [&] {
    auto listener = f.stack_b->tcp().listen(80);
    auto conn = listener->accept();
    char c;
    conn->recv(&c, 1);
  });
  f.sim.spawn("client", [&] {
    auto conn = f.stack_a->tcp().connect(f.b, 80);
    conn->send("x", 1);
    conn->close();
    conn->close();  // idempotent
    try {
      conn->send("y", 1);
    } catch (const mg::UsageError&) {
      threw = true;
    }
  });
  f.sim.run();
  EXPECT_TRUE(threw);
}

TEST(Tcp, AcceptForTimesOut) {
  TwoHostNet f;
  bool timed_out = false;
  f.sim.spawn("server", [&] {
    auto listener = f.stack_b->tcp().listen(80);
    auto conn = listener->acceptFor(50 * st::kMillisecond);
    timed_out = (conn == nullptr);
  });
  f.sim.run();
  EXPECT_TRUE(timed_out);
}

TEST(Tcp, ListenTwiceOnSamePortThrows) {
  TwoHostNet f;
  f.sim.spawn("p", [&] {
    auto l1 = f.stack_a->tcp().listen(80);
    EXPECT_THROW(f.stack_a->tcp().listen(80), mg::UsageError);
    l1->close();
    auto l2 = f.stack_a->tcp().listen(80);  // reusable after close
    l2->close();
  });
  f.sim.run();
}

TEST(Tcp, SmallMessageLatencyDominatedByPropagation) {
  TwoHostNet f(100e6, st::fromSeconds(25e-3));  // 25 ms one-way
  SimTime rtt = 0;
  f.sim.spawn("server", [&] {
    auto listener = f.stack_b->tcp().listen(80);
    auto conn = listener->accept();
    char c;
    conn->recv(&c, 1);
    conn->send(&c, 1);
  });
  f.sim.spawn("client", [&] {
    auto conn = f.stack_a->tcp().connect(f.b, 80);
    SimTime t0 = f.sim.now();
    conn->send("x", 1);
    char c;
    conn->recvExact(&c, 1);
    rtt = f.sim.now() - t0;
  });
  f.sim.run();
  EXPECT_GE(rtt, st::fromSeconds(50e-3));
  EXPECT_LT(rtt, st::fromSeconds(55e-3));
}

// Parameterized sweep: transfer integrity across sizes (property-style).
class TcpTransferSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(TcpTransferSweep, TransferIsLossless) {
  const size_t size = GetParam();
  TwoHostNet f;
  auto data = patternBytes(size, static_cast<std::uint8_t>(size & 0xff));
  std::vector<std::uint8_t> received(size);
  f.sim.spawn("server", [&] {
    auto listener = f.stack_b->tcp().listen(80);
    auto conn = listener->accept();
    if (size > 0) conn->recvExact(received.data(), size);
  });
  f.sim.spawn("client", [&] {
    auto conn = f.stack_a->tcp().connect(f.b, 80);
    if (size > 0) conn->send(data.data(), size);
    conn->close();
  });
  f.sim.run();
  EXPECT_EQ(received, data);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TcpTransferSweep,
                         ::testing::Values(0, 1, 4, 100, 1460, 1461, 4096, 65536, 262144));

// Parameterized sweep: delivery is reliable across loss rates.
class TcpLossSweep : public ::testing::TestWithParam<double> {};

TEST_P(TcpLossSweep, DeliversDespiteLoss) {
  TwoHostNet f(100e6, st::fromSeconds(1e-3), GetParam());
  const size_t kSize = 128 * 1024;
  auto data = patternBytes(kSize, 9);
  std::vector<std::uint8_t> received(kSize);
  f.sim.spawn("server", [&] {
    auto listener = f.stack_b->tcp().listen(80);
    auto conn = listener->accept();
    conn->recvExact(received.data(), kSize);
  });
  f.sim.spawn("client", [&] {
    auto conn = f.stack_a->tcp().connect(f.b, 80);
    conn->send(data.data(), kSize);
    conn->close();
  });
  f.sim.run();
  EXPECT_EQ(received, data);
}

INSTANTIATE_TEST_SUITE_P(LossRates, TcpLossSweep, ::testing::Values(0.0, 0.005, 0.02, 0.05));

// --------------------------------------------------------------------- udp --

TEST(Udp, SendReceiveDatagram) {
  TwoHostNet f;
  std::vector<std::uint8_t> got;
  NodeId from = kNoNode;
  f.sim.spawn("server", [&] {
    auto sock = f.stack_b->udp().bind(53);
    Datagram d = sock->recvFrom();
    got = d.data;
    from = d.src_node;
  });
  f.sim.spawn("client", [&] { f.stack_a->udp().sendTo(f.b, 53, patternBytes(100)); });
  f.sim.run();
  EXPECT_EQ(got, patternBytes(100));
  EXPECT_EQ(from, f.a);
}

TEST(Udp, LargeDatagramFragmentsAndReassembles) {
  TwoHostNet f;
  const size_t kSize = 20000;  // ~14 fragments
  std::vector<std::uint8_t> got;
  f.sim.spawn("server", [&] {
    auto sock = f.stack_b->udp().bind(53);
    got = sock->recvFrom().data;
  });
  f.sim.spawn("client", [&] { f.stack_a->udp().sendTo(f.b, 53, patternBytes(kSize, 5)); });
  f.sim.run();
  EXPECT_EQ(got, patternBytes(kSize, 5));
}

TEST(Udp, FragmentLossDropsWholeDatagram) {
  TwoHostNet f(100e6, st::fromSeconds(1e-3), /*loss=*/0.5);
  int received = 0;
  f.sim.spawn("server", [&] {
    auto sock = f.stack_b->udp().bind(53);
    for (;;) {
      auto d = sock->recvFromFor(st::kSecond);
      if (!d) break;
      ++received;
    }
  });
  f.sim.spawn("client", [&] {
    for (int i = 0; i < 20; ++i) f.stack_a->udp().sendTo(f.b, 53, patternBytes(10000));
  });
  f.sim.run();
  // 10000 B = 7 fragments; P(all survive) = 0.5^7 < 1% — most datagrams die.
  EXPECT_LT(received, 5);
}

TEST(Udp, OversizeDatagramThrows) {
  TwoHostNet f;
  f.sim.spawn("p", [&] {
    EXPECT_THROW(f.stack_a->udp().sendTo(f.b, 53, std::vector<std::uint8_t>(70000)),
                 mg::UsageError);
  });
  f.sim.run();
}

TEST(Udp, UnboundPortSilentlyDropped) {
  TwoHostNet f;
  f.sim.spawn("client", [&] { f.stack_a->udp().sendTo(f.b, 1234, patternBytes(10)); });
  f.sim.run();  // must terminate without error
  EXPECT_EQ(f.net->stats().packets_delivered, 1);  // delivered to stack, no socket
}

TEST(Udp, ReplyUsingSourceAddress) {
  TwoHostNet f;
  std::vector<std::uint8_t> reply;
  f.sim.spawn("server", [&] {
    auto sock = f.stack_b->udp().bind(7);
    Datagram d = sock->recvFrom();
    sock->sendTo(d.src_node, d.src_port, d.data);  // echo
  });
  f.sim.spawn("client", [&] {
    auto sock = f.stack_a->udp().bind(5555);
    sock->sendTo(f.b, 7, patternBytes(32, 1));
    reply = sock->recvFrom().data;
  });
  f.sim.run();
  EXPECT_EQ(reply, patternBytes(32, 1));
}

TEST(Udp, DoubleBindThrows) {
  TwoHostNet f;
  f.sim.spawn("p", [&] {
    auto s1 = f.stack_a->udp().bind(99);
    EXPECT_THROW(f.stack_a->udp().bind(99), mg::UsageError);
    s1->close();
    auto s2 = f.stack_a->udp().bind(99);
  });
  f.sim.run();
}

// ------------------------------------------------------------ flow network --

namespace {
Topology lineTopo(double bw1 = 100e6, double bw2 = 100e6) {
  Topology t;
  t.addHost("a");
  t.addRouter("r");
  t.addHost("b");
  t.addLink("l0", 0, 1, bw1, st::fromSeconds(1e-3));
  t.addLink("l1", 1, 2, bw2, st::fromSeconds(2e-3));
  return t;
}
}  // namespace

TEST(FlowNetwork, EstimateMatchesFormula) {
  Simulator sim;
  FlowNetworkOptions opts;
  FlowNetwork fn(sim, lineTopo(100e6, 10e6), opts);
  const std::int64_t bytes = 1'000'000;
  const double wire_bits = bytes * opts.byte_overhead * 8.0;
  const SimTime expected =
      opts.per_message_overhead + st::fromSeconds(3e-3) + st::fromSeconds(wire_bits / 10e6);
  EXPECT_NEAR(static_cast<double>(fn.estimate(0, 2, bytes)), static_cast<double>(expected), 10.0);
}

TEST(FlowNetwork, TransferBlocksForModeledDuration) {
  Simulator sim;
  FlowNetwork fn(sim, lineTopo(), {});
  SimTime took = 0;
  sim.spawn("p", [&] { took = fn.transfer(0, 2, 100000); });
  sim.run();
  // An uncontended flow runs at the bottleneck rate for its whole life, so
  // the blocking transfer must land exactly on the analytic estimate.
  EXPECT_NEAR(static_cast<double>(took), static_cast<double>(fn.estimate(0, 2, 100000)),
              static_cast<double>(st::kMicrosecond));
  EXPECT_EQ(fn.stats().flows_started, 1);
  EXPECT_EQ(fn.stats().flows_completed, 1);
}

TEST(FlowNetwork, ContentionHalvesThroughput) {
  // Two equal concurrent flows on the same path: max-min gives each half the
  // bottleneck, so both take ~2x the solo duration and finish together.
  SimTime solo = 0;
  {
    Simulator sim;
    FlowNetwork fn(sim, lineTopo(), {});
    sim.spawn("p", [&] { solo = fn.transfer(0, 2, 1'000'000); });
    sim.run();
  }
  Simulator sim;
  FlowNetwork fn(sim, lineTopo(), {});
  SimTime t1 = 0, t2 = 0;
  sim.spawn("p1", [&] { t1 = fn.transfer(0, 2, 1'000'000); });
  sim.spawn("p2", [&] { t2 = fn.transfer(0, 2, 1'000'000); });
  sim.run();
  const double wire_s = 1'000'000 * (1538.0 / 1460.0) * 8.0 / 100e6;  // solo drain
  const double tol = 2e-3 * static_cast<double>(st::kSecond);
  EXPECT_NEAR(static_cast<double>(t1), static_cast<double>(solo) + wire_s * st::kSecond, tol);
  EXPECT_NEAR(static_cast<double>(t2), static_cast<double>(t1), tol);
}

namespace {
// Two equal links in a row: n0 --L0-- n1 --L1-- n2, 100 Mbit/s each.
Topology twoHopTopo() {
  Topology t;
  t.addHost("n0");
  t.addRouter("n1");
  t.addHost("n2");
  t.addLink("L0", 0, 1, 100e6, st::fromSeconds(1e-3));
  t.addLink("L1", 1, 2, 100e6, st::fromSeconds(1e-3));
  return t;
}
}  // namespace

TEST(FlowMaxMin, SingleBottleneckSplitsEvenly) {
  Simulator sim;
  Topology t;
  t.addHost("a");
  t.addHost("b");
  t.addLink("l0", 0, 1, 100e6, st::fromSeconds(1e-3));
  FlowNetwork fn(sim, std::move(t), {});
  auto& eng = fn.engine();
  FlowId f1 = 0, f2 = 0;
  double r1 = -1, r2 = -1, r1_after = -1;
  sim.scheduleAt(0, [&] {
    f1 = eng.startBits(0, 1, 100e6, 0, {}, {});  // 1 s of wire solo
    f2 = eng.startBits(0, 1, 25e6, 0, {}, {});
  });
  sim.scheduleAt(st::kMillisecond, [&] {
    r1 = eng.currentRateBps(f1);
    r2 = eng.currentRateBps(f2);
  });
  // f2 drains at 25e6 / 50e6 = 0.5 s; afterwards f1 has the link alone.
  sim.scheduleAt(600 * st::kMillisecond, [&] { r1_after = eng.currentRateBps(f1); });
  sim.run();
  EXPECT_NEAR(r1, 50e6, 1.0);
  EXPECT_NEAR(r2, 50e6, 1.0);
  EXPECT_NEAR(r1_after, 100e6, 1.0);
  EXPECT_EQ(fn.stats().flows_completed, 2);
  EXPECT_EQ(fn.stats().peak_active_flows, 2);
}

TEST(FlowMaxMin, DirectionsShareNothing) {
  // The two directions of a full-duplex link are independent resources, as
  // in the packet model's per-direction transmit queues.
  Simulator sim;
  Topology t;
  t.addHost("a");
  t.addHost("b");
  t.addLink("l0", 0, 1, 100e6, st::fromSeconds(1e-3));
  FlowNetwork fn(sim, std::move(t), {});
  auto& eng = fn.engine();
  FlowId fwd = 0, rev = 0;
  double r_fwd = -1, r_rev = -1;
  sim.scheduleAt(0, [&] {
    fwd = eng.startBits(0, 1, 50e6, 0, {}, {});
    rev = eng.startBits(1, 0, 50e6, 0, {}, {});
  });
  sim.scheduleAt(st::kMillisecond, [&] {
    r_fwd = eng.currentRateBps(fwd);
    r_rev = eng.currentRateBps(rev);
  });
  sim.run();
  EXPECT_NEAR(r_fwd, 100e6, 1.0);
  EXPECT_NEAR(r_rev, 100e6, 1.0);
}

TEST(FlowMaxMin, ParkingLotOracle) {
  // Parking lot: F0 spans both links; F1 and F3 load L0, F2 loads L1.
  //   L0 carries {F0, F1, F3} -> bottleneck share 100/3 Mbit/s fixes them;
  //   L1 then has 100 - 100/3 left for F2 alone -> 200/3 Mbit/s.
  Simulator sim;
  FlowNetwork fn(sim, twoHopTopo(), {});
  auto& eng = fn.engine();
  FlowId f0 = 0, f1 = 0, f2 = 0, f3 = 0;
  double r0 = -1, r1 = -1, r2 = -1, r3 = -1;
  sim.scheduleAt(0, [&] {
    f0 = eng.startBits(0, 2, 1e9, 0, {}, {});
    f1 = eng.startBits(0, 1, 1e9, 0, {}, {});
    f2 = eng.startBits(1, 2, 1e9, 0, {}, {});
    f3 = eng.startBits(0, 1, 1e9, 0, {}, {});
  });
  sim.scheduleAt(st::kMillisecond, [&] {
    r0 = eng.currentRateBps(f0);
    r1 = eng.currentRateBps(f1);
    r2 = eng.currentRateBps(f2);
    r3 = eng.currentRateBps(f3);
  });
  sim.run();
  EXPECT_NEAR(r0, 100e6 / 3.0, 1.0);
  EXPECT_NEAR(r1, 100e6 / 3.0, 1.0);
  EXPECT_NEAR(r3, 100e6 / 3.0, 1.0);
  EXPECT_NEAR(r2, 200e6 / 3.0, 1.0);
}

TEST(FlowMaxMin, ReShareOnCompletionOracle) {
  // A (10 Mbit wire) and B (2.5 Mbit) start together on a 100 Mbit/s link:
  // both run at 50 Mbit/s until B drains at t=0.05 s; A then finishes its
  // remaining 7.5 Mbit alone at 100 Mbit/s, draining at t=0.125 s. Each
  // completion fires latency + per-message overhead after its drain.
  Simulator sim;
  FlowNetworkOptions opts;
  Topology t;
  t.addHost("a");
  t.addHost("b");
  t.addLink("l0", 0, 1, 100e6, st::fromSeconds(1e-3));
  FlowNetwork fn(sim, std::move(t), opts);
  auto& eng = fn.engine();
  SimTime done_a = 0, done_b = 0;
  sim.scheduleAt(0, [&] {
    eng.startBits(0, 1, 10e6, 0, [&] { done_a = sim.now(); }, {});
    eng.startBits(0, 1, 2.5e6, 0, [&] { done_b = sim.now(); }, {});
  });
  sim.run();
  const double tail = 1e-3 + st::toSeconds(opts.per_message_overhead);
  EXPECT_NEAR(st::toSeconds(done_b), 0.05 + tail, 1e-6);
  EXPECT_NEAR(st::toSeconds(done_a), 0.125 + tail, 1e-6);
}

TEST(FlowMaxMin, LinkDownAbortsActiveFlows) {
  Simulator sim;
  FlowNetwork fn(sim, twoHopTopo(), {});
  auto& eng = fn.engine();
  std::string why;
  bool completed = false;
  sim.scheduleAt(0, [&] {
    eng.startBits(0, 2, 1e9, 0, [&] { completed = true; },
                  [&](const std::string& r) { why = r; });
  });
  sim.scheduleAt(10 * st::kMillisecond, [&] { fn.setLinkUp(1, false); });
  sim.run();
  EXPECT_EQ(why, "link_down");
  EXPECT_FALSE(completed);
  EXPECT_EQ(fn.stats().flows_aborted, 1);
  EXPECT_EQ(eng.activeFlows(), 0);
}

TEST(FlowMaxMin, TransitNodeCrashAbortsFlows) {
  Simulator sim;
  FlowNetwork fn(sim, twoHopTopo(), {});
  auto& eng = fn.engine();
  std::string why;
  sim.scheduleAt(0, [&] {
    eng.startBits(0, 2, 1e9, 0, {}, [&](const std::string& r) { why = r; });
  });
  sim.scheduleAt(10 * st::kMillisecond, [&] { fn.setNodeUp(1, false); });
  sim.run();
  EXPECT_EQ(why, "node_down");
  EXPECT_EQ(fn.stats().flows_aborted, 1);
}

TEST(FlowMaxMin, DegradeResharesMidFlow) {
  // 10 Mbit wire alone at 100 Mbit/s; at t=0.04 s (4 Mbit drained) the link
  // degrades to 50 Mbit/s, so the last 6 Mbit take 0.12 s: drain at 0.16 s.
  Simulator sim;
  FlowNetworkOptions opts;
  Topology t;
  t.addHost("a");
  t.addHost("b");
  t.addLink("l0", 0, 1, 100e6, st::fromSeconds(1e-3));
  FlowNetwork fn(sim, std::move(t), opts);
  auto& eng = fn.engine();
  SimTime done = 0;
  sim.scheduleAt(0, [&] { eng.startBits(0, 1, 10e6, 0, [&] { done = sim.now(); }, {}); });
  sim.scheduleAt(40 * st::kMillisecond, [&] {
    LinkParams p = fn.linkParams(0);
    p.bandwidth_bps = 50e6;
    fn.applyLinkParams(0, p);
  });
  sim.run();
  const double tail = 1e-3 + st::toSeconds(opts.per_message_overhead);
  EXPECT_NEAR(st::toSeconds(done), 0.16 + tail, 1e-6);
  EXPECT_GT(eng.linkUtilization(0), 0.0);
}

TEST(FlowNetwork, NoRouteThrows) {
  Simulator sim;
  Topology t;
  t.addHost("a");
  t.addHost("b");
  FlowNetwork fn(sim, std::move(t), {});
  bool threw = false;
  sim.spawn("p", [&] {
    try {
      fn.transfer(0, 1, 100);
    } catch (const mg::ConfigError&) {
      threw = true;
    }
  });
  sim.run();
  EXPECT_TRUE(threw);
}

TEST(FlowNetwork, SameNodeTransferIsJustOverhead) {
  Simulator sim;
  FlowNetworkOptions opts;
  FlowNetwork fn(sim, lineTopo(), opts);
  SimTime took = -1;
  sim.spawn("p", [&] { took = fn.transfer(0, 0, 12345); });
  sim.run();
  EXPECT_EQ(took, opts.per_message_overhead);
}

TEST(FlowNetwork, TimeScaleInvariantInNetworkTime) {
  auto netDuration = [](double scale) {
    Simulator sim;
    FlowNetworkOptions opts;
    opts.time_scale = scale;
    FlowNetwork fn(sim, lineTopo(), opts);
    SimTime took = 0;
    sim.spawn("p", [&] { took = fn.transfer(0, 2, 500000); });
    sim.run();
    return took;
  };
  const SimTime d1 = netDuration(1.0);
  const SimTime d8 = netDuration(8.0);
  EXPECT_NEAR(static_cast<double>(d1), static_cast<double>(d8), 5.0);
}

TEST(FlowMaxMin, DegradeToZeroStallsThenResumes) {
  // 10 Mbit wire alone at 100 Mbit/s; at t=0.04 s the link degrades to zero
  // bandwidth. The flow must *stall* (rate 0, no drain event, no progress)
  // rather than divide by zero or drain on a stale schedule. At t=0.1 s
  // capacity returns: the remaining 6 Mbit take 0.06 s, so drain lands at
  // 0.16 s exactly as if the link had been 50 Mbit/s the whole middle leg.
  Simulator sim;
  FlowNetworkOptions opts;
  Topology t;
  t.addHost("a");
  t.addHost("b");
  t.addLink("l0", 0, 1, 100e6, st::fromSeconds(1e-3));
  FlowNetwork fn(sim, std::move(t), opts);
  auto& eng = fn.engine();
  FlowId f = 0;
  SimTime done = 0;
  bool stalled_mid = false, consistent_mid = false;
  double rate_mid = -1;
  bool estimate_threw = false;
  sim.scheduleAt(0, [&] { f = eng.startBits(0, 1, 10e6, 0, [&] { done = sim.now(); }, {}); });
  sim.scheduleAt(40 * st::kMillisecond, [&] {
    LinkParams p = fn.linkParams(0);
    p.bandwidth_bps = 0;  // legal degraded state for the fluid model
    fn.applyLinkParams(0, p);
  });
  sim.scheduleAt(80 * st::kMillisecond, [&] {
    stalled_mid = eng.isStalled(f);
    rate_mid = eng.currentRateBps(f);
    consistent_mid = eng.indexConsistent();
    try {
      eng.estimate(0, 1, 1000);  // uncontended transfer would never finish
    } catch (const mg::ConfigError&) {
      estimate_threw = true;
    }
  });
  sim.scheduleAt(100 * st::kMillisecond, [&] {
    LinkParams p = fn.linkParams(0);
    p.bandwidth_bps = 100e6;
    fn.applyLinkParams(0, p);
  });
  sim.run();
  EXPECT_TRUE(stalled_mid);
  EXPECT_EQ(rate_mid, 0.0);
  EXPECT_TRUE(consistent_mid);
  EXPECT_TRUE(estimate_threw);
  EXPECT_EQ(fn.stats().flows_stalled, 1);
  EXPECT_EQ(fn.stats().flows_completed, 1);
  EXPECT_FALSE(eng.isStalled(f));  // gone: not stalled
  const double tail = 1e-3 + st::toSeconds(opts.per_message_overhead);
  EXPECT_NEAR(st::toSeconds(done), 0.16 + tail, 1e-6);
}

TEST(FlowMaxMin, StalledFlowStillAbortsOnLinkDown) {
  // A parked flow keeps its route in the reverse index, so a link_down on
  // its path must still find and abort it.
  Simulator sim;
  Topology t;
  t.addHost("a");
  t.addHost("b");
  t.addLink("l0", 0, 1, 100e6, st::fromSeconds(1e-3));
  FlowNetwork fn(sim, std::move(t), {});
  auto& eng = fn.engine();
  std::string why;
  sim.scheduleAt(0, [&] {
    eng.startBits(0, 1, 1e9, 0, {}, [&](const std::string& r) { why = r; });
  });
  sim.scheduleAt(10 * st::kMillisecond, [&] {
    LinkParams p = fn.linkParams(0);
    p.bandwidth_bps = 0;
    fn.applyLinkParams(0, p);
  });
  sim.scheduleAt(20 * st::kMillisecond, [&] { fn.setLinkUp(0, false); });
  sim.run();
  EXPECT_EQ(why, "link_down");
  EXPECT_EQ(fn.stats().flows_stalled, 1);
  EXPECT_EQ(fn.stats().flows_aborted, 1);
  EXPECT_EQ(eng.activeFlows(), 0);
}

TEST(FlowMaxMin, AbortCallbackCanStartFlowsMidRecompute) {
  // Abort callbacks are *scheduled*, never run inside the recompute that
  // killed the flow — so a callback that immediately starts a replacement
  // flow (retry loops do) must observe a consistent index and get correct
  // max-min rates, and the other victim's callback must still fire.
  Simulator sim;
  FlowNetwork fn(sim, twoHopTopo(), {});
  auto& eng = fn.engine();
  FlowId replacement = 0;
  std::string why1, why2;
  double repl_rate = -1;
  bool consistent_in_cb = false;
  sim.scheduleAt(0, [&] {
    eng.startBits(0, 2, 1e9, 0, {}, [&](const std::string& r) {
      why1 = r;
      consistent_in_cb = eng.indexConsistent();
      replacement = eng.startBits(0, 1, 1e9, 0, {}, {});  // L0 only
    });
    eng.startBits(0, 2, 1e9, 0, {}, [&](const std::string& r) { why2 = r; });
  });
  sim.scheduleAt(10 * st::kMillisecond, [&] { fn.setLinkUp(1, false); });
  sim.scheduleAt(20 * st::kMillisecond, [&] { repl_rate = eng.currentRateBps(replacement); });
  sim.run();  // replacement drains alone in ~10 s and completes
  EXPECT_EQ(why1, "link_down");
  EXPECT_EQ(why2, "link_down");
  EXPECT_TRUE(consistent_in_cb);
  EXPECT_NEAR(repl_rate, 100e6, 1.0);  // alone on L0 after the aborts
  EXPECT_TRUE(eng.indexConsistent());
  EXPECT_EQ(fn.stats().flows_aborted, 2);
}

TEST(FlowMaxMin, IndexConsistentAfterChurn) {
  // Mixed churn — starts, completions, an abort, a degrade — must leave the
  // link→flow reverse index and busy accounting exactly consistent.
  Simulator sim;
  FlowNetwork fn(sim, twoHopTopo(), {});
  auto& eng = fn.engine();
  sim.scheduleAt(0, [&] {
    eng.startBits(0, 2, 1e6, 0, {}, {});  // drains ~0.02 s, well before the faults
    eng.startBits(0, 1, 1e9, 0, {}, [](const std::string&) {});
    eng.startBits(1, 2, 10e6, 0, {}, {});
  });
  sim.scheduleAt(30 * st::kMillisecond, [&] {
    LinkParams p = fn.linkParams(1);
    p.bandwidth_bps = 25e6;
    fn.applyLinkParams(1, p);
    EXPECT_TRUE(eng.indexConsistent());
  });
  sim.scheduleAt(60 * st::kMillisecond, [&] { fn.setLinkUp(0, false); });
  sim.run();
  EXPECT_TRUE(eng.indexConsistent());
  EXPECT_EQ(eng.activeFlows(), 0);
  EXPECT_EQ(fn.stats().flows_completed, 2);
  EXPECT_EQ(fn.stats().flows_aborted, 1);
}

TEST(FlowNetwork, ZeroBandwidthParamsFlowOnlyAcceptance) {
  // Zero bandwidth is a legal degraded state for the fluid model but the
  // packet model divides by bandwidth per segment, so it must keep
  // rejecting it; negative capacity is meaningless everywhere.
  Simulator sim;
  FlowNetwork fn(sim, lineTopo(), {});
  LinkParams p = fn.linkParams(0);
  p.bandwidth_bps = 0;
  EXPECT_NO_THROW(fn.applyLinkParams(0, p));
  p.bandwidth_bps = -1;
  EXPECT_THROW(fn.applyLinkParams(0, p), mg::UsageError);

  Simulator psim;
  Topology pt;
  pt.addHost("a");
  pt.addHost("b");
  pt.addLink("l", 0, 1, 100e6, st::fromSeconds(1e-3));
  PacketNetwork pn(psim, std::move(pt), {});
  LinkParams pp = pn.linkParams(0);
  pp.bandwidth_bps = 0;
  EXPECT_THROW(pn.applyLinkParams(0, pp), mg::UsageError);
}

TEST(Udp, IncompleteReassemblyTimesOutAndCounts) {
  // Heavy loss: fragments go missing, partial datagrams must be garbage
  // collected after the reassembly timeout and counted.
  TwoHostNet f(100e6, st::fromSeconds(1e-3), /*loss=*/0.6);
  f.sim.spawn("server", [&] {
    auto sock = f.stack_b->udp().bind(53);
    for (;;) {
      auto d = sock->recvFromFor(40 * st::kSecond);
      if (!d) break;
    }
  });
  f.sim.spawn("client", [&] {
    for (int i = 0; i < 30; ++i) f.stack_a->udp().sendTo(f.b, 53, patternBytes(6000));
  });
  f.sim.run();
  EXPECT_GT(f.stack_b->udp().datagramsDroppedIncomplete(), 0);
}
