// Tests for vmpi: point-to-point semantics, matching, nonblocking ops, and
// collectives, run over real virtual sockets on the reference platform.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/reference_platform.h"
#include "core/topologies.h"
#include "vmpi/comm.h"

using namespace mg;
using core::ReferencePlatform;
using vmpi::Comm;

namespace {

/// Run `body(comm)` on `n` ranks, one per host of an n-host cluster.
void runRanks(int n, const std::function<void(Comm&)>& body) {
  core::topologies::AlphaClusterParams params;
  params.hosts = n;
  auto cfg = core::topologies::alphaCluster(params);
  ReferencePlatform platform(cfg);
  std::vector<std::string> hosts;
  for (const auto& h : platform.mapper().hosts()) hosts.push_back(h.hostname);
  for (int r = 0; r < n; ++r) {
    platform.spawnOn(hosts[static_cast<size_t>(r)], "rank" + std::to_string(r),
                     [r, hosts, &body](vos::HostContext& ctx) {
                       auto comm = Comm::init(ctx, r, hosts);
                       body(*comm);
                       comm->finalize();
                     });
  }
  platform.run();
}

}  // namespace

TEST(Vmpi, RankAndSize) {
  std::vector<int> seen(4, -1);
  runRanks(4, [&](Comm& c) {
    EXPECT_EQ(c.size(), 4);
    seen[static_cast<size_t>(c.rank())] = c.rank();
  });
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Vmpi, BlockingSendRecv) {
  runRanks(2, [](Comm& c) {
    if (c.rank() == 0) {
      const double v = 3.14159;
      c.send(1, 7, &v, sizeof v);
    } else {
      double v = 0;
      auto st = c.recv(0, 7, &v, sizeof v);
      EXPECT_DOUBLE_EQ(v, 3.14159);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 7);
      EXPECT_EQ(st.bytes, sizeof v);
    }
  });
}

TEST(Vmpi, MessagesFromOneSenderArriveInOrder) {
  runRanks(2, [](Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 20; ++i) c.send(1, 5, &i, sizeof i);
    } else {
      for (int i = 0; i < 20; ++i) {
        int v = -1;
        c.recv(0, 5, &v, sizeof v);
        EXPECT_EQ(v, i);
      }
    }
  });
}

TEST(Vmpi, TagMatchingSkipsNonMatching) {
  runRanks(2, [](Comm& c) {
    if (c.rank() == 0) {
      int a = 1, b = 2;
      c.send(1, 10, &a, sizeof a);
      c.send(1, 20, &b, sizeof b);
    } else {
      int v = 0;
      c.recv(0, 20, &v, sizeof v);  // match the second message first
      EXPECT_EQ(v, 2);
      c.recv(0, 10, &v, sizeof v);
      EXPECT_EQ(v, 1);
    }
  });
}

TEST(Vmpi, AnySourceAnyTag) {
  runRanks(3, [](Comm& c) {
    if (c.rank() != 0) {
      const int v = 100 + c.rank();
      c.send(0, c.rank(), &v, sizeof v);
    } else {
      int sum = 0;
      for (int i = 0; i < 2; ++i) {
        int v = 0;
        auto st = c.recv(vmpi::kAnySource, vmpi::kAnyTag, &v, sizeof v);
        EXPECT_EQ(v, 100 + st.source);
        sum += v;
      }
      EXPECT_EQ(sum, 203);
    }
  });
}

TEST(Vmpi, SelfSend) {
  runRanks(2, [](Comm& c) {
    const int v = c.rank() * 11;
    c.send(c.rank(), 3, &v, sizeof v);
    int got = -1;
    c.recv(c.rank(), 3, &got, sizeof got);
    EXPECT_EQ(got, v);
  });
}

TEST(Vmpi, OversizeMessageThrows) {
  runRanks(2, [](Comm& c) {
    if (c.rank() == 0) {
      std::vector<std::uint8_t> big(1024, 1);
      c.send(1, 1, big.data(), big.size());
    } else {
      std::uint8_t small[16];
      EXPECT_THROW(c.recv(0, 1, small, sizeof small), mg::Error);
    }
  });
}

TEST(Vmpi, IsendIrecvOverlap) {
  runRanks(2, [](Comm& c) {
    std::vector<double> out(1000), in(1000);
    std::iota(out.begin(), out.end(), c.rank() * 1000.0);
    auto sreq = c.isend(1 - c.rank(), 9, out.data(), out.size() * sizeof(double));
    auto rreq = c.irecv(1 - c.rank(), 9, in.data(), in.size() * sizeof(double));
    c.wait(sreq);
    auto st = c.wait(rreq);
    EXPECT_EQ(st.bytes, 1000 * sizeof(double));
    EXPECT_DOUBLE_EQ(in.front(), (1 - c.rank()) * 1000.0);
  });
}

TEST(Vmpi, WaitOnInvalidRequestThrows) {
  runRanks(2, [](Comm& c) {
    vmpi::Request req;
    EXPECT_THROW(c.wait(req), mg::UsageError);
    (void)c;
  });
}

TEST(Vmpi, SendRecvExchanges) {
  runRanks(2, [](Comm& c) {
    const int mine = c.rank() + 50;
    int theirs = -1;
    c.sendRecv(1 - c.rank(), 4, &mine, sizeof mine, 1 - c.rank(), 4, &theirs, sizeof theirs);
    EXPECT_EQ(theirs, (1 - c.rank()) + 50);
  });
}

TEST(Vmpi, WireBytesPaddingSlowsTransfer) {
  double small_time = 0, padded_time = 0;
  runRanks(2, [&](Comm& c) {
    // Warm up with a barrier so both ranks start together.
    c.barrier();
    const char byte = 'x';
    if (c.rank() == 0) {
      double t0 = c.wtime();
      c.send(1, 1, &byte, 1);
      char ack;
      c.recv(1, 2, &ack, 1);
      small_time = c.wtime() - t0;
      t0 = c.wtime();
      c.send(1, 3, &byte, 1, /*wire_bytes=*/1 << 20);
      c.recv(1, 4, &ack, 1);
      padded_time = c.wtime() - t0;
    } else {
      char b;
      c.recv(0, 1, &b, 1);
      c.send(0, 2, &b, 1);
      c.recv(0, 3, &b, 1);
      c.send(0, 4, &b, 1);
    }
  });
  // 1 MB over 100 Mbps is ~90 ms; the 1-byte round trip is sub-millisecond.
  EXPECT_GT(padded_time, 50 * small_time);
}

// ------------------------------------------------------------ collectives --

class VmpiRankSweep : public ::testing::TestWithParam<int> {};

TEST_P(VmpiRankSweep, BarrierSynchronizes) {
  const int n = GetParam();
  std::vector<double> after(static_cast<size_t>(n), 0);
  runRanks(n, [&](Comm& c) {
    // Stagger arrivals; everyone must leave after the last arrival.
    c.context().sleep(0.01 * (c.rank() + 1));
    c.barrier();
    after[static_cast<size_t>(c.rank())] = c.wtime();
  });
  for (int r = 0; r < n; ++r) {
    EXPECT_GE(after[static_cast<size_t>(r)], 0.01 * n) << "rank " << r;
  }
}

TEST_P(VmpiRankSweep, BcastFromEveryRoot) {
  const int n = GetParam();
  runRanks(n, [n](Comm& c) {
    for (int root = 0; root < n; ++root) {
      std::vector<double> data(64, c.rank() == root ? root * 1.5 : -1.0);
      c.bcast(data.data(), data.size() * sizeof(double), root);
      for (double v : data) EXPECT_DOUBLE_EQ(v, root * 1.5);
    }
  });
}

TEST_P(VmpiRankSweep, AllreduceSum) {
  const int n = GetParam();
  runRanks(n, [n](Comm& c) {
    std::vector<double> data(10);
    for (size_t i = 0; i < data.size(); ++i) data[i] = c.rank() + static_cast<double>(i);
    c.allreduce(data.data(), data.size(), vmpi::Op::Sum);
    const double ranksum = n * (n - 1) / 2.0;
    for (size_t i = 0; i < data.size(); ++i) {
      EXPECT_DOUBLE_EQ(data[i], ranksum + n * static_cast<double>(i));
    }
  });
}

TEST_P(VmpiRankSweep, AllreduceMinMaxInt) {
  const int n = GetParam();
  runRanks(n, [n](Comm& c) {
    std::int64_t v = c.rank() + 1;
    c.allreduce(&v, 1, vmpi::Op::Max);
    EXPECT_EQ(v, n);
    std::int64_t w = c.rank() + 1;
    c.allreduce(&w, 1, vmpi::Op::Min);
    EXPECT_EQ(w, 1);
  });
}

TEST_P(VmpiRankSweep, RingAllreduceMatchesTree) {
  const int n = GetParam();
  runRanks(n, [](Comm& c) {
    std::vector<double> ring(37), tree(37);
    for (size_t i = 0; i < ring.size(); ++i) {
      ring[i] = tree[i] = std::sin(c.rank() * 3.0 + static_cast<double>(i));
    }
    c.allreduceRing(ring.data(), ring.size(), vmpi::Op::Sum);
    c.allreduce(tree.data(), tree.size(), vmpi::Op::Sum);
    for (size_t i = 0; i < ring.size(); ++i) EXPECT_NEAR(ring[i], tree[i], 1e-12);
  });
}

TEST_P(VmpiRankSweep, GatherScatter) {
  const int n = GetParam();
  runRanks(n, [n](Comm& c) {
    const std::int32_t mine = 100 + c.rank();
    std::vector<std::int32_t> all(static_cast<size_t>(n));
    c.gather(&mine, sizeof mine, all.data(), 0);
    if (c.rank() == 0) {
      for (int r = 0; r < n; ++r) EXPECT_EQ(all[static_cast<size_t>(r)], 100 + r);
      for (int r = 0; r < n; ++r) all[static_cast<size_t>(r)] = 200 + r;
    }
    std::int32_t got = -1;
    c.scatter(all.data(), sizeof got, &got, 0);
    EXPECT_EQ(got, 200 + c.rank());
  });
}

TEST_P(VmpiRankSweep, AlltoallvPersonalized) {
  const int n = GetParam();
  runRanks(n, [n](Comm& c) {
    // Rank r sends d bytes of value (r*16+d) to rank d.
    std::vector<std::vector<std::uint8_t>> blocks(static_cast<size_t>(n));
    for (int d = 0; d < n; ++d) {
      blocks[static_cast<size_t>(d)].assign(static_cast<size_t>(d),
                                            static_cast<std::uint8_t>(c.rank() * 16 + d));
    }
    auto got = c.alltoallv(blocks);
    ASSERT_EQ(got.size(), static_cast<size_t>(n));
    for (int s = 0; s < n; ++s) {
      const auto& blk = got[static_cast<size_t>(s)];
      ASSERT_EQ(blk.size(), static_cast<size_t>(c.rank())) << "from " << s;
      for (auto b : blk) EXPECT_EQ(b, static_cast<std::uint8_t>(s * 16 + c.rank()));
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, VmpiRankSweep, ::testing::Values(1, 2, 3, 4, 7, 8));

TEST(Vmpi, CountersTrackTraffic) {
  runRanks(2, [](Comm& c) {
    if (c.rank() == 0) {
      std::vector<std::uint8_t> buf(1000, 1);
      c.send(1, 1, buf.data(), buf.size());
      c.send(1, 1, buf.data(), buf.size(), 5000);  // padded
      EXPECT_EQ(c.messagesSent(), 2);
      EXPECT_EQ(c.bytesSent(), 6000);
    } else {
      std::vector<std::uint8_t> buf(1000);
      c.recv(0, 1, buf.data(), buf.size());
      c.recv(0, 1, buf.data(), buf.size());
    }
  });
}

TEST(Vmpi, MultipleRanksPerHost) {
  // 4 ranks on 2 hosts (2 each) — port allocation must not collide.
  core::topologies::AlphaClusterParams params;
  params.hosts = 2;
  auto cfg = core::topologies::alphaCluster(params);
  ReferencePlatform platform(cfg);
  std::vector<std::string> hosts = {"vm0.ucsd.edu", "vm0.ucsd.edu", "vm1.ucsd.edu",
                                    "vm1.ucsd.edu"};
  std::vector<double> sums(4, 0);
  for (int r = 0; r < 4; ++r) {
    platform.spawnOn(hosts[static_cast<size_t>(r)], "rank" + std::to_string(r),
                     [r, hosts, &sums](vos::HostContext& ctx) {
                       auto comm = Comm::init(ctx, r, hosts);
                       double v = r + 1.0;
                       comm->allreduce(&v, 1, vmpi::Op::Sum);
                       sums[static_cast<size_t>(r)] = v;
                       comm->finalize();
                     });
  }
  platform.run();
  for (double s : sums) EXPECT_DOUBLE_EQ(s, 10.0);
}
