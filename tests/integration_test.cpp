// Cross-module integration tests: failure injection with rerouting,
// config-file-driven end-to-end runs, concurrent GIS clients, and
// full-stack error paths.
#include <gtest/gtest.h>

#include "core/launcher.h"
#include "core/microgrid_platform.h"
#include "core/reference_platform.h"
#include "core/topologies.h"
#include "npb/npb.h"
#include "gis/schema.h"
#include "gis/service.h"
#include "net/host_stack.h"
#include "vmpi/comm.h"

using namespace mg;
namespace st = mg::sim;

namespace {
std::vector<grid::AllocationPart> onePerHostHelper(const core::Platform& platform) {
  std::vector<grid::AllocationPart> parts;
  for (const auto& h : platform.mapper().hosts()) parts.push_back({h.hostname, 1});
  return parts;
}
}  // namespace

// ------------------------------------------------- failure injection ------

TEST(FailureInjection, TcpSurvivesLinkFailureViaBackupRoute) {
  // Primary direct link plus a two-hop backup; the direct link dies mid
  // transfer. Routing recomputes and retransmissions take the backup path —
  // the stream stays intact.
  st::Simulator sim;
  net::Topology topo;
  auto a = topo.addHost("a");
  auto b = topo.addHost("b");
  auto r = topo.addRouter("r");
  net::LinkId direct = topo.addLink("direct", a, b, 100e6, st::fromSeconds(1e-3));
  topo.addLink("backup1", a, r, 100e6, st::fromSeconds(5e-3));
  topo.addLink("backup2", r, b, 100e6, st::fromSeconds(5e-3));
  net::PacketNetwork net(sim, std::move(topo), {});
  net::HostStack sa(net, a), sb(net, b);

  const size_t kSize = 1 << 20;
  std::vector<std::uint8_t> data(kSize);
  for (size_t i = 0; i < kSize; ++i) data[i] = static_cast<std::uint8_t>(i * 7);
  std::vector<std::uint8_t> received(kSize);
  bool done = false;

  sim.spawn("server", [&] {
    auto listener = sb.tcp().listen(80);
    auto conn = listener->accept();
    conn->recvExact(received.data(), kSize);
    done = true;
  });
  sim.spawn("client", [&] {
    auto conn = sa.tcp().connect(b, 80);
    conn->send(data.data(), kSize);
    conn->close();
  });
  sim.spawn("saboteur", [&] {
    sim.delay(20 * st::kMillisecond);  // mid-transfer
    net.setLinkUp(direct, false);
  });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(received, data);
  EXPECT_GT(net.stats().packets_dropped_down, 0);
}

TEST(FailureInjection, TcpTransferCompletesAfterLinkFlap) {
  // Down and back up: traffic stalls (RTO backoff) then resumes on the
  // restored link — no data corruption.
  st::Simulator sim;
  net::Topology topo;
  auto a = topo.addHost("a");
  auto b = topo.addHost("b");
  net::LinkId only = topo.addLink("only", a, b, 100e6, st::fromSeconds(1e-3));
  net::PacketNetwork net(sim, std::move(topo), {});
  net::HostStack sa(net, a), sb(net, b);

  const size_t kSize = 256 * 1024;
  std::vector<std::uint8_t> data(kSize, 0x3c);
  std::vector<std::uint8_t> received(kSize);
  st::SimTime finished = -1;
  sim.spawn("server", [&] {
    auto listener = sb.tcp().listen(80);
    auto conn = listener->accept();
    conn->recvExact(received.data(), kSize);
    finished = sim.now();
  });
  sim.spawn("client", [&] {
    auto conn = sa.tcp().connect(b, 80);
    conn->send(data.data(), kSize);
    conn->close();
  });
  sim.spawn("flapper", [&] {
    sim.delay(5 * st::kMillisecond);
    net.setLinkUp(only, false);
    sim.delay(500 * st::kMillisecond);
    net.setLinkUp(only, true);
  });
  sim.run();
  EXPECT_EQ(received, data);
  EXPECT_GT(finished, st::fromSeconds(0.5));  // the outage is visible
}

TEST(FailureInjection, LossyWanStillCompletesNpb) {
  // 1% loss on the WAN bottleneck: TCP recovers, the job still verifies.
  core::topologies::VbnsParams params;
  auto cfg = core::topologies::vbns(params);
  // Rebuild with loss on the bottleneck by direct construction.
  core::VirtualGridConfig lossy;
  lossy.addPhysical("p0", 533e6);
  lossy.addPhysical("p1", 533e6);
  lossy.addHost("a.site", "1.1.1.1", 533e6, 1ll << 30, "p0");
  lossy.addHost("b.site", "1.2.2.1", 533e6, 1ll << 30, "p1");
  lossy.addRouter("wan");
  lossy.addLink("l0", "a.site", "wan", 100e6, 10e-3, 256 * 1024, 0.01);
  lossy.addLink("l1", "wan", "b.site", 100e6, 10e-3, 256 * 1024, 0.01);
  core::MicroGridPlatform platform(lossy);
  grid::ExecutableRegistry registry;
  npb::ResultSink sink;
  npb::registerNpb(registry, sink);
  core::Launcher launcher(platform, registry);
  launcher.startServices();
  auto result = launcher.run("npb.mg", "S", {{"a.site", 1}, {"b.site", 1}});
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(sink.allVerified());
  EXPECT_GT(platform.packetNetwork().stats().packets_dropped_loss, 0);
}

// ------------------------------------------------- config-file driven -----

TEST(ConfigDriven, FullPipelineFromIniText) {
  auto cfg = core::VirtualGridConfig::fromConfig(util::Config::parse(R"(
# A two-host virtual grid on one physical machine.
[physical ws]
cpu = 1GHz

[host left.grid]
ip = 10.0.0.1
cpu = 500MHz
memory = 256MB
map = ws

[host right.grid]
ip = 10.0.0.2
cpu = 500MHz
memory = 256MB
map = ws

[node hub]
kind = router

[link l0]
a = left.grid
b = hub
bandwidth = 100Mbps
latency = 0.1ms

[link l1]
a = right.grid
b = hub
bandwidth = 100Mbps
latency = 0.1ms
)"));
  EXPECT_NEAR(core::SimulationRate::compute(cfg).max_feasible, 1.0, 1e-9);
  core::MicroGridPlatform platform(cfg);
  grid::ExecutableRegistry registry;
  registry.add("probe", [](grid::JobContext& jc) {
    auto comm = vmpi::Comm::init(jc);
    double v = 1;
    comm->allreduce(&v, 1, vmpi::Op::Sum);
    comm->finalize();
    return v == 2.0 ? 0 : 1;
  });
  core::Launcher launcher(platform, registry);
  launcher.startServices(&cfg, "IniConfig");
  auto result = launcher.run("probe", "", {{"left.grid", 1}, {"right.grid", 1}});
  EXPECT_TRUE(result.ok) << result.error;
  // The GIS carries the published Fig 3 records for this configuration.
  auto hosts = gis::virtualHostsForConfig(launcher.directory(),
                                          gis::Dn::parse("ou=MicroGrid, o=Grid"), "IniConfig");
  EXPECT_EQ(hosts.size(), 2u);
  EXPECT_EQ(hosts[0].get("Mapped_Physical_Resource"), "ws");
}

// ------------------------------------------------------- GIS service ------

TEST(GisIntegration, ManyConcurrentClients) {
  auto cfg = core::topologies::alphaCluster();
  core::ReferencePlatform platform(cfg);
  gis::Directory dir;
  cfg.toGis(dir, gis::Dn::parse("ou=MicroGrid, o=Grid"), "AlphaCluster");
  platform.spawnOn("vm0.ucsd.edu", "gis-server",
                   [&](vos::HostContext& ctx) { gis::serveDirectory(ctx, dir); });
  int successes = 0;
  for (int c = 0; c < 8; ++c) {
    const std::string host = "vm" + std::to_string(1 + c % 3) + ".ucsd.edu";
    platform.spawnOn(host, "client" + std::to_string(c), [&, c](vos::HostContext& ctx) {
      ctx.sleep(0.001 * c);
      gis::GisClient client(ctx, "vm0.ucsd.edu");
      for (int q = 0; q < 5; ++q) {
        auto recs = client.search("ou=MicroGrid, o=Grid", gis::Scope::Subtree,
                                  "(Is_Virtual_Resource=Yes)");
        if (recs.size() == 8) ++successes;
      }
      client.close();
    });
  }
  platform.run();
  EXPECT_EQ(successes, 40);
}

TEST(GisIntegration, DiscoveryDrivenPlacement) {
  // A scheduler-like client discovers hosts through the GIS and submits to
  // the fastest one — resource discovery feeding resource management.
  core::VirtualGridConfig cfg;
  cfg.addPhysical("p0", 1e9);
  cfg.addPhysical("p1", 1e9);
  cfg.addHost("slow.grid", "1.0.0.1", 100e6, 1ll << 30, "p0");
  cfg.addHost("fast.grid", "1.0.0.2", 900e6, 1ll << 30, "p1");
  cfg.addRouter("hub");
  cfg.addLink("l0", "slow.grid", "hub", 100e6, 1e-4);
  cfg.addLink("l1", "fast.grid", "hub", 100e6, 1e-4);
  core::ReferencePlatform platform(cfg);
  grid::ExecutableRegistry registry;
  auto ran_on = std::make_shared<std::string>();
  registry.add("job", [ran_on](grid::JobContext& jc) {
    *ran_on = jc.os.hostname();
    return 0;
  });
  core::Launcher launcher(platform, registry);
  launcher.startServices(&cfg, "Placement");

  auto done = std::make_shared<bool>(false);
  platform.spawnOn("slow.grid", "scheduler", [&, done](vos::HostContext& ctx) {
    ctx.sleep(0.01);
    gis::GisClient gis_client(ctx, launcher.gisHost());
    auto records = gis_client.search("ou=MicroGrid, o=Grid", gis::Scope::Subtree,
                                     "(objectclass=GridComputeResource)");
    std::string best;
    double best_ops = 0;
    for (const auto& rec : records) {
      const auto info = gis::hostInfoFromRecord(rec);
      if (info.cpu_ops > best_ops) {
        best_ops = info.cpu_ops;
        best = info.hostname;
      }
    }
    grid::GramClient gram(ctx);
    grid::Rsl rsl;
    rsl.set("executable", "job");
    auto st = gram.wait(gram.submit(best, rsl));
    *done = (st.state == grid::JobState::Done);
  });
  platform.run();
  EXPECT_TRUE(*done);
  EXPECT_EQ(*ran_on, "fast.grid");
}

// ----------------------------------------------------- error paths --------

TEST(ErrorPaths, LauncherRejectsUnknownHostInParts) {
  auto cfg = core::topologies::alphaCluster();
  core::ReferencePlatform platform(cfg);
  grid::ExecutableRegistry registry;
  registry.add("noop", [](grid::JobContext&) { return 0; });
  core::Launcher launcher(platform, registry);
  launcher.startServices();
  // An unknown part host fails inside the submitting client (name
  // resolution), yielding a failed result...
  auto result = launcher.run("noop", "", {{"ghost.host", 1}}, {}, "vm0.ucsd.edu");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("ghost.host"), std::string::npos);
  // ...while an unknown *client* host is a caller bug and throws.
  EXPECT_THROW(launcher.run("noop", "", {{"ghost.host", 1}}), vos::UnknownHost);
}

TEST(ErrorPaths, CoallocationFailsAtomicallyOnOneBadPart) {
  // One part names a missing executable variant via count=0; the result
  // reports failure while good parts still ran.
  auto cfg = core::topologies::alphaCluster();
  core::ReferencePlatform platform(cfg);
  grid::ExecutableRegistry registry;
  registry.add("failer", [](grid::JobContext& jc) {
    return jc.os.hostname() == "vm1.ucsd.edu" ? 9 : 0;
  });
  core::Launcher launcher(platform, registry);
  launcher.startServices();
  auto result = launcher.run("failer", "", {{"vm0.ucsd.edu", 1}, {"vm1.ucsd.edu", 1}});
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.exit_code, 9);
}

TEST(ErrorPaths, RunWithoutServicesThrows) {
  auto cfg = core::topologies::alphaCluster();
  core::ReferencePlatform platform(cfg);
  grid::ExecutableRegistry registry;
  core::Launcher launcher(platform, registry);
  EXPECT_THROW(launcher.run("x", "", {{"vm0.ucsd.edu", 1}}), mg::UsageError);
  launcher.startServices();
  EXPECT_THROW(launcher.startServices(), mg::UsageError);
  EXPECT_THROW(launcher.run("x", "", {}), mg::UsageError);
}

TEST(ErrorPaths, SpawnOnUnknownHostThrows) {
  auto cfg = core::topologies::alphaCluster();
  core::MicroGridPlatform platform(cfg);
  EXPECT_THROW(platform.spawnOn("nope", "p", [](vos::HostContext&) {}), vos::UnknownHost);
}

// ------------------------------------------------- mixed workloads --------

TEST(MixedWorkload, TwoJobsShareTheGridConcurrently) {
  // Two co-allocated jobs overlap on the same virtual hosts; both complete
  // and the CPU fractions re-divide between their processes.
  auto cfg = core::topologies::alphaCluster();
  core::MicroGridPlatform platform(cfg);
  grid::ExecutableRegistry registry;
  npb::ResultSink sink;
  npb::registerNpb(registry, sink);
  core::Launcher launcher(platform, registry);
  launcher.startServices();

  // Submit the second job from a separate client process while the first
  // runs: both run() calls share one simulation.
  auto second = std::make_shared<core::LaunchResult>();
  platform.spawnOn("vm2.ucsd.edu", "client2", [second](vos::HostContext& ctx) {
    ctx.sleep(0.05);
    grid::Coallocator co(ctx);
    // Use different vmpi ports than the first job to avoid clashes.
    auto r = co.run("npb.ep", "S", {{"vm0.ucsd.edu", 1}, {"vm1.ucsd.edu", 1}},
                    {{"MG_PORT_BASE", "7000"}});
    second->ok = r.ok;
    second->error = r.error;
  });
  auto first = launcher.run("npb.ep", "S", {{"vm0.ucsd.edu", 1},
                                            {"vm1.ucsd.edu", 1},
                                            {"vm2.ucsd.edu", 1},
                                            {"vm3.ucsd.edu", 1}});
  EXPECT_TRUE(first.ok) << first.error;
  EXPECT_TRUE(second->ok) << second->error;
  EXPECT_EQ(sink.results().size(), 6u);
  EXPECT_TRUE(sink.allVerified());
}

TEST(MixedWorkload, SequentialRunsOnOnePlatformAreIndependent) {
  auto cfg = core::topologies::alphaCluster();
  core::ReferencePlatform platform(cfg);
  grid::ExecutableRegistry registry;
  npb::ResultSink sink;
  npb::registerNpb(registry, sink);
  core::Launcher launcher(platform, registry);
  launcher.startServices();
  auto r1 = launcher.run("npb.is", "S", onePerHostHelper(platform));
  sink.clear();
  auto r2 = launcher.run("npb.is", "S", onePerHostHelper(platform));
  EXPECT_TRUE(r1.ok);
  EXPECT_TRUE(r2.ok);
  EXPECT_TRUE(sink.allVerified());
}

// ------------------------------------------------------------ scale -------

TEST(Scale, SixteenHostClusterRunsEpAndMg) {
  // The paper's near-term goal: "scaling to dozens of machines". 16 virtual
  // hosts, full GRAM path, on the MicroGrid platform.
  core::topologies::AlphaClusterParams params;
  params.hosts = 16;
  core::MicroGridPlatform platform(core::topologies::alphaCluster(params));
  grid::ExecutableRegistry registry;
  npb::ResultSink sink;
  npb::registerNpb(registry, sink);
  core::Launcher launcher(platform, registry);
  launcher.startServices();
  for (const char* exe : {"npb.ep", "npb.mg"}) {
    sink.clear();
    auto result = launcher.run(exe, "S", onePerHostHelper(platform));
    EXPECT_TRUE(result.ok) << exe << ": " << result.error;
    EXPECT_EQ(sink.results().size(), 16u);
    EXPECT_TRUE(sink.allVerified()) << exe;
  }
}
